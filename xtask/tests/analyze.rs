//! Integration tests for `cargo xtask analyze`: the negative fixtures under
//! `tests/fixtures/` must trip every rule (through the library *and* through
//! the binary's exit code), and the real workspace must analyze clean.

use std::path::PathBuf;
use std::process::Command;

use xtask::rules::{analyze, Config};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).parent().expect("xtask has a parent").to_path_buf()
}

#[test]
fn bad_fixture_trips_every_rule() {
    let analysis = analyze(&Config::rambda(fixture_root("bad"))).expect("fixture scans");
    let hits: Vec<(&str, &str, &str)> =
        analysis.violations.iter().map(|v| (v.rule, v.path.as_str(), v.token.as_str())).collect();

    let kvs = "crates/kvs/src/lib.rs";
    let ring = "crates/ring/src/lib.rs";
    let des = "crates/des/src/lib.rs";
    let fabric = "crates/fabric/src/lib.rs";
    let txn = "crates/txn/src/lib.rs";
    for expected in [
        ("R1", kvs, "HashMap"),
        ("R1", kvs, "HashSet"),
        ("R2", kvs, "Instant"),
        ("R2", kvs, "thread::spawn"),
        ("R2", kvs, "std::env"),
        ("R3", kvs, "forbid(unsafe_code)"),
        ("R3", ring, "deny(unsafe_op_in_unsafe_fn)"),
        ("R3", ring, "unsafe"),
        ("R4", des, "pub fn frobnicate"),
        ("R5", fabric, "println!"),
        ("R5", fabric, "eprintln!"),
        ("R6", txn, "run_txn_report"),
        ("R6", txn, "run_txn_report_traced"),
        ("R6", "crates/txn/src/caller.rs", "run_txn_report_traced"),
    ] {
        assert!(hits.contains(&expected), "missing expected violation {expected:?} in {hits:#?}");
    }

    // The driver binary under src/bin/ reads std::env and prints, yet must
    // trip nothing: R1/R2/R5 exempt bin targets.
    assert!(
        hits.iter().all(|(_, p, _)| !p.contains("/src/bin/")),
        "driver binaries are exempt from R1/R2/R5: {hits:#?}"
    );
    // The println! inside the fabric fixture's #[cfg(test)] module is
    // masked: exactly the two library-code prints fire.
    let r5_fabric = hits.iter().filter(|(r, p, _)| *r == "R5" && *p == fabric).count();
    assert_eq!(r5_fabric, 2, "test-module prints must be masked: {hits:#?}");

    // The documented `unsafe` in the ring fixture and the HashMap inside the
    // kvs fixture's #[cfg(test)] module must NOT be flagged: exactly one R3
    // unsafe-token violation, and every R1 hit sits outside the test module.
    let undocumented: Vec<_> =
        hits.iter().filter(|(r, p, t)| *r == "R3" && *p == ring && *t == "unsafe").collect();
    assert_eq!(undocumented.len(), 1, "only the uncommented unsafe should fire: {hits:#?}");
    let r1_lines: Vec<u32> =
        analysis.violations.iter().filter(|v| v.rule == "R1" && v.path == kvs).map(|v| v.line).collect();
    assert!(
        r1_lines.iter().all(|&l| l < 21),
        "R1 must skip the #[cfg(test)] module (lines >= 21): {r1_lines:?}"
    );
}

#[test]
fn bad_fixture_fails_through_the_binary() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["analyze", "--root"])
        .arg(fixture_root("bad"))
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[R1] HashMap"), "diagnostic names the token:\n{stdout}");
    assert!(stdout.contains("crates/kvs/src/lib.rs:"), "diagnostic is file:line:\n{stdout}");
}

#[test]
fn r7_fixture_trips_partition_hazards_and_clean_twin_passes() {
    let analysis = analyze(&Config::rambda(fixture_root("r7/bad"))).expect("fixture scans");
    let hits: Vec<(&str, &str)> = analysis.violations.iter().map(|v| (v.rule, v.token.as_str())).collect();
    for expected in [("R7", "static mut EPOCH"), ("R7", "thread_local!"), ("R7", "SharedState.cache: Rc")] {
        assert!(hits.contains(&expected), "missing expected violation {expected:?} in {hits:#?}");
    }
    assert_eq!(hits.len(), 3, "exactly the three hazards fire: {hits:#?}");
    // The shared-cell diagnostic carries the reachability path that makes
    // the sharing concrete.
    let cell = analysis.violations.iter().find(|v| v.token.contains("SharedState")).unwrap();
    assert!(
        cell.hint.contains("Machine .state -> SharedState"),
        "hint must show the reachability path: {}",
        cell.hint
    );

    let clean = analyze(&Config::rambda(fixture_root("r7/clean"))).expect("fixture scans");
    assert!(clean.is_clean(), "a Cell unreachable from Machine must not fire: {:#?}", clean.violations);
}

#[test]
fn r8_fixture_trips_rng_provenance_and_clean_twin_passes() {
    let analysis = analyze(&Config::rambda(fixture_root("r8/bad"))).expect("fixture scans");
    let hits: Vec<(&str, &str)> = analysis.violations.iter().map(|v| (v.rule, v.token.as_str())).collect();
    for expected in [("R8", "thread_rng"), ("R8", "rng.clone()"), ("R8", "World.rng: SimRng")] {
        assert!(hits.contains(&expected), "missing expected violation {expected:?} in {hits:#?}");
    }
    // The literal seed and the unsalted seed each fire once; the
    // `SimRng::seed(params.seed)` call must not.
    let seeds = hits.iter().filter(|(r, t)| *r == "R8" && *t == "SimRng::seed").count();
    assert_eq!(seeds, 2, "literal + unsalted seed, nothing else: {hits:#?}");
    assert_eq!(hits.len(), 5, "exactly the five provenance breaks fire: {hits:#?}");

    // The clean twin exercises the exemptions: a bare-literal seed() inside
    // `impl SimRng`, a literal seed under #[cfg(test)], and one RNG beside
    // a single machine.
    let clean = analyze(&Config::rambda(fixture_root("r8/clean"))).expect("fixture scans");
    assert!(clean.is_clean(), "R8 exemptions must hold: {:#?}", clean.violations);
}

#[test]
fn r9_fixture_trips_unguarded_counters_and_clean_twin_passes() {
    let analysis = analyze(&Config::rambda(fixture_root("r9/bad"))).expect("fixture scans");
    let hits: Vec<(&str, &str, &str)> =
        analysis.violations.iter().map(|v| (v.rule, v.path.as_str(), v.token.as_str())).collect();
    let rnic = "crates/rnic/src/lib.rs";
    assert!(hits.contains(&("R9", rnic, "doorbells")), "unguarded counter fires: {hits:#?}");
    assert!(hits.contains(&("R9", rnic, "cqes")), "unguarded counter fires: {hits:#?}");
    // `.wqes` is mentioned by the identity; the error prose naming
    // "doorbells" contains whitespace and must not count as coverage.
    assert!(!hits.contains(&("R9", rnic, "wqes")), "guarded counter must not fire: {hits:#?}");
    assert_eq!(hits.len(), 2, "exactly the two unguarded counters fire: {hits:#?}");

    let clean = analyze(&Config::rambda(fixture_root("r9/clean"))).expect("fixture scans");
    assert!(clean.is_clean(), "fully guarded counters must pass: {:#?}", clean.violations);
}

#[test]
fn r10_fixture_trips_unguarded_scope_mirrors_and_clean_twin_passes() {
    // The bad twin satisfies R9 (a generic `validate_totals` names every
    // mirror) but leaves two of the three `scope.`/`hot.` mirrors out of
    // the dedicated `validate_scopes` identity — exactly those fire, and
    // only under R10.
    let analysis = analyze(&Config::rambda(fixture_root("r10/bad"))).expect("fixture scans");
    let hits: Vec<(&str, &str, &str)> =
        analysis.violations.iter().map(|v| (v.rule, v.path.as_str(), v.token.as_str())).collect();
    let metrics = "crates/metrics/src/lib.rs";
    assert!(hits.contains(&("R10", metrics, "scope.latency_ps")), "unguarded mirror fires: {hits:#?}");
    assert!(hits.contains(&("R10", metrics, "hot.top_hits")), "unguarded mirror fires: {hits:#?}");
    assert!(!hits.contains(&("R10", metrics, "scope.count")), "guarded mirror must not fire: {hits:#?}");
    assert!(hits.iter().all(|(r, _, _)| *r == "R10"), "generic coverage keeps R9 quiet: {hits:#?}");
    assert_eq!(hits.len(), 2, "exactly the two unguarded mirrors fire: {hits:#?}");

    let clean = analyze(&Config::rambda(fixture_root("r10/clean"))).expect("fixture scans");
    assert!(clean.is_clean(), "validate_scopes coverage must pass: {:#?}", clean.violations);
}

#[test]
fn r9_covers_the_metrics_crate_event_core_publisher() {
    // The metrics crate is itself a stats crate now: the event-core
    // summary's `publish_metrics` (an impl method, not a free fn) must be
    // scanned, and an identity that skips one of its suffixes must fire.
    let analysis = analyze(&Config::rambda(fixture_root("r9ec/bad"))).expect("fixture scans");
    let hits: Vec<(&str, &str, &str)> =
        analysis.violations.iter().map(|v| (v.rule, v.path.as_str(), v.token.as_str())).collect();
    let metrics = "crates/metrics/src/lib.rs";
    assert!(hits.contains(&("R9", metrics, "dwell_ps")), "unguarded scheduler counter fires: {hits:#?}");
    assert!(!hits.contains(&("R9", metrics, "enqueued")), "guarded counter must not fire: {hits:#?}");
    assert!(!hits.contains(&("R9", metrics, "dispatched")), "guarded counter must not fire: {hits:#?}");
    assert_eq!(hits.len(), 1, "exactly the unguarded counter fires: {hits:#?}");

    let clean = analyze(&Config::rambda(fixture_root("r9ec/clean"))).expect("fixture scans");
    assert!(clean.is_clean(), "fully guarded event-core publisher passes: {:#?}", clean.violations);
}

#[test]
fn json_output_through_the_binary() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["analyze", "--json", "--root"])
        .arg(fixture_root("r9/bad"))
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(1), "violations still exit 1 under --json");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("{\"files_scanned\":"), "JSON object on stdout:\n{stdout}");
    assert!(stdout.contains("\"rule\":\"R9\""), "violations are serialized:\n{stdout}");
    assert!(stdout.contains("\"token\":\"doorbells\""), "tokens are serialized:\n{stdout}");
    assert!(stdout.contains("\"clean\":false"), "verdict is serialized:\n{stdout}");
}

#[test]
fn github_annotations_through_the_binary() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["analyze", "--github", "--root"])
        .arg(fixture_root("r7/bad"))
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(1), "violations still exit 1 under --github");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("::error file=crates/fabric/src/lib.rs,line="),
        "workflow annotations name file and line:\n{stdout}"
    );
    assert!(stdout.contains("title=analyze R7::"), "annotations carry the rule:\n{stdout}");
}

#[test]
fn allowlist_entry_without_reason_refuses_to_run() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["analyze", "--root"])
        .arg(fixture_root("noreason"))
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(2), "an unjustified allowlist entry is an I/O-class error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no `# reason`"), "error names the missing reason:\n{stderr}");
}

#[test]
fn stale_allowlist_entry_is_an_error() {
    let analysis = analyze(&Config::rambda(fixture_root("stale"))).expect("fixture scans");
    assert!(analysis.violations.is_empty(), "fixture itself is clean: {:#?}", analysis.violations);
    assert_eq!(analysis.stale_allows.len(), 1, "the unused entry must be reported");
    assert!(!analysis.is_clean(), "stale entries alone must fail the run");

    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["analyze", "--root"])
        .arg(fixture_root("stale"))
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(1), "stale allowlist entries must exit 1");
}

#[test]
fn real_workspace_is_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["analyze", "--root"])
        .arg(workspace_root())
        .output()
        .expect("xtask binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "workspace must analyze clean:\n{stdout}\n{stderr}");
}

#[test]
fn unknown_flags_are_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["analyze", "--frobnicate"])
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
}
