//! CLI contract of the `report` binary's scoped-metrics mode (DESIGN.md
//! §15): bad selections fail fast with the valid-runner listing before any
//! simulation runs or output directory is created, mirroring the existing
//! `--trace-runner`/`--profile-runner` validation.

use std::path::Path;
use std::process::{Command, Output};

fn report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_report")).args(args).output().expect("spawn report")
}

#[test]
fn unknown_scopes_runner_fails_fast_with_listing() {
    let out = report(&["--scopes", "nope"]);
    assert_eq!(out.status.code(), Some(2), "bad runner must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--scopes"), "{err}");
    // The shared check prints every valid runner, so the user can fix the
    // invocation without reading the source.
    for runner in ["micro.cpu", "kvs.rambda", "txn.rambda_tx", "dlrm.rambda"] {
        assert!(err.contains(runner), "listing missing {runner}: {err}");
    }
}

#[test]
fn stray_scopes_out_without_scopes_fails_fast() {
    let dir = format!("{}/stray-scopes-out", env!("CARGO_TARGET_TMPDIR"));
    let out = report(&["--scopes-out", &dir]);
    assert_eq!(out.status.code(), Some(2), "stray --scopes-out must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--scopes-out has no effect without --scopes"), "{err}");
    assert!(!Path::new(&dir).exists(), "fail-fast must not create the output dir");
}

#[test]
fn scopes_combined_with_trace_or_profile_fails_fast() {
    let dir = format!("{}/scopes-vs-trace", env!("CARGO_TARGET_TMPDIR"));
    for other in ["--trace", "--profile"] {
        let out = report(&["--scopes", "kvs.rambda", other, &dir]);
        assert_eq!(out.status.code(), Some(2), "{other} + --scopes must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--scopes cannot be combined"), "{err}");
        assert!(!Path::new(&dir).exists(), "fail-fast must not create the {other} dir");
    }
}

#[test]
fn scoped_export_writes_both_artifacts_and_validates() {
    let dir = format!("{}/scopes-ok", env!("CARGO_TARGET_TMPDIR"));
    let out = report(&["--scopes", "micro.rambda", "--scopes-out", &dir]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scope conservation identities validated"), "{stdout}");
    assert!(stdout.contains("hot keys"), "{stdout}");
    assert!(stdout.contains("slo windows="), "{stdout}");

    let scoped = std::fs::read_to_string(format!("{dir}/micro.rambda.scopes.json")).expect("scoped json");
    assert!(scoped.contains("\"scopes\""), "scoped report must carry the scopes section");
    let unscoped =
        std::fs::read_to_string(format!("{dir}/micro.rambda.unscoped.json")).expect("unscoped json");
    assert!(!unscoped.contains("\"scopes\""), "unscoped report must omit the scopes section");
}
