//! `cargo xtask` — workspace automation.
//!
//! ```text
//! cargo xtask analyze [--root PATH] [--verbose] [--json] [--github]
//! cargo xtask bench [--quick] [--compare PATH] [...]
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations (or stale allowlist entries, or
//! bench regressions), 2 = usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::rules::{analyze, Config};

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  analyze [--root PATH] [--verbose] [--json] [--github]
      Enforce the workspace determinism & unsafety invariants (DESIGN.md §8
      and §13):
        R1  no HashMap/HashSet in simulation crates
        R2  no wall-clock / thread::spawn / env-dependent I/O in simulation crates
        R3  unsafe confined to crates/ring, each use documented with // SAFETY:
        R4  every pub item in rambda-des, rambda-metrics and rambda-trace documented
        R5  no println!/eprintln! outside src/bin drivers and the bench crate
        R6  deprecated runner shims note \"use SimBuilder ...\", and nothing
            in-tree outside a shim's own file still calls one
        R7  partition safety: no static mut / thread_local! / shared cells
            (Rc, RefCell, ...) reachable from a simulated machine
        R8  RNG provenance: every RNG flows from the workload seed via a
            salting call; no literal seeds, entropy sources, or clones
        R9  every counter published by publish_metrics appears in a
            validate_* conservation identity
      Violations can be allowlisted in xtask/analyze.allow (one per line:
      `RULE path token  # reason`; the reason is mandatory); stale entries
      are errors.

      --json emits the analysis as a JSON object on stdout (violations,
      allowed, stale_allows, files_scanned) instead of human-readable text.
      --github additionally emits GitHub Actions `::error file=..` workflow
      annotations so violations surface inline on pull requests.

  bench [--quick] [--sweep NAME]... [--out DIR] [--compare PATH]
        [--profile-compare PATH] [--list]
      Build (release) and run the continuous-benchmark harness: seeded
      sweeps reproducing the paper's curves, byte-deterministic
      BENCH_<sweep>.json artifacts, and — with --compare — a regression
      gate against committed baselines (DESIGN.md §10). All flags except
      --profile-compare are forwarded to the rambda-bench `bench` binary.

      --profile-compare PATH is handled by xtask itself: after the harness
      exits cleanly, the fresh BENCH_PROFILE.json (from --out, default
      bench/out) is gated against PATH/BENCH_PROFILE.json — every gating
      sweep must keep requests_per_sec above the committed floor minus 40%
      tolerance (DESIGN.md §12.3). Exit 1 on any throughput regression.
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => {
            let mut root: Option<PathBuf> = None;
            let mut verbose = false;
            let mut json = false;
            let mut github = false;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => match args.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => return usage_error("--root requires a path"),
                    },
                    "--verbose" => verbose = true,
                    "--json" => json = true,
                    "--github" => github = true,
                    other => return usage_error(&format!("unknown flag `{other}`")),
                }
            }
            run_analyze(root, AnalyzeOutput { verbose, json, github })
        }
        Some("bench") => run_bench(args.collect()),
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
        None => usage_error("missing command"),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// The workspace root: `--root`, or the parent of this crate's manifest dir
/// (so `cargo xtask analyze` works from any cwd inside the workspace).
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    explicit.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).parent().expect("xtask has a parent dir").to_path_buf()
    })
}

/// Runs the bench harness binary in release mode from the workspace root
/// (relative artifact/baseline paths like `bench/baselines` then resolve
/// the same way from any cwd inside the workspace), forwarding all flags
/// and the child's exit status.
///
/// `--profile-compare PATH` is intercepted here rather than forwarded: once
/// the harness exits cleanly, the fresh `BENCH_PROFILE.json` under `--out`
/// (default `bench/out`) is gated against `PATH/BENCH_PROFILE.json`.
fn run_bench(forward: Vec<String>) -> ExitCode {
    let mut child_args = Vec::with_capacity(forward.len());
    let mut profile_floor: Option<PathBuf> = None;
    let mut out_dir = PathBuf::from("bench/out");
    let mut it = forward.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile-compare" => match it.next() {
                Some(p) => profile_floor = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --profile-compare requires a path");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => {
                    out_dir = PathBuf::from(&p);
                    child_args.push(arg);
                    child_args.push(p);
                }
                None => {
                    eprintln!("error: --out requires a path");
                    return ExitCode::from(2);
                }
            },
            _ => child_args.push(arg),
        }
    }

    let root = workspace_root(None);
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = std::process::Command::new(cargo)
        .current_dir(&root)
        .args(["run", "--release", "-q", "-p", "rambda-bench", "--bin", "bench", "--"])
        .args(child_args)
        .status();
    let code = match status {
        Ok(s) => s.code().unwrap_or(2).clamp(0, 255) as u8,
        Err(e) => {
            eprintln!("error: failed to launch the bench harness: {e}");
            return ExitCode::from(2);
        }
    };
    if code != 0 {
        return ExitCode::from(code);
    }
    match profile_floor {
        Some(floor) => run_profile_gate(&root.join(out_dir), &root.join(floor)),
        None => ExitCode::SUCCESS,
    }
}

/// Gates the fresh profile in `out_dir` against the committed floor in
/// `floor_dir` (both hold a `BENCH_PROFILE.json`). Exit 1 on regression,
/// 2 when either file is missing or malformed.
fn run_profile_gate(out_dir: &std::path::Path, floor_dir: &std::path::Path) -> ExitCode {
    let load = |dir: &std::path::Path| -> Result<xtask::profile::Profile, String> {
        let path = dir.join("BENCH_PROFILE.json");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        xtask::profile::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let (current, floor) = match (load(out_dir), load(floor_dir)) {
        (Ok(c), Ok(f)) => (c, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let regressions = xtask::profile::compare(&current, &floor);
    for r in &regressions {
        println!("{r}");
    }
    let gated = floor.sweep_names().filter(|s| xtask::profile::Profile::is_gating(s)).count();
    if regressions.is_empty() {
        println!("profile gate: {gated} sweeps above the committed throughput floor");
        ExitCode::SUCCESS
    } else {
        println!("profile gate: {} of {gated} sweeps regressed", regressions.len());
        ExitCode::FAILURE
    }
}

/// Output-shaping flags for `analyze`.
struct AnalyzeOutput {
    verbose: bool,
    json: bool,
    github: bool,
}

fn run_analyze(root: Option<PathBuf>, out: AnalyzeOutput) -> ExitCode {
    let cfg = Config::rambda(workspace_root(root));
    let analysis = match analyze(&cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    if out.json {
        println!("{}", analysis_json(&analysis));
        return if analysis.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    if out.github {
        // GitHub Actions workflow commands: one `::error` per violation so
        // the annotation lands on the offending line of the PR diff.
        for v in &analysis.violations {
            println!(
                "::error file={},line={},title=analyze {}::{} — {}",
                v.path,
                v.line,
                v.rule,
                github_escape(&v.token),
                github_escape(&v.hint)
            );
        }
        for stale in &analysis.stale_allows {
            println!(
                "::error file={},title=analyze allowlist::stale entry matches nothing, delete it: {}",
                cfg.allowlist.display(),
                github_escape(stale)
            );
        }
    }
    if out.verbose {
        for v in &analysis.allowed {
            println!("allowed: {v}");
        }
    }
    for v in &analysis.violations {
        println!("{v}");
    }
    for stale in &analysis.stale_allows {
        println!("xtask/analyze.allow: stale entry matches nothing, delete it: `{stale}`");
    }

    let n = analysis.violations.len();
    let s = analysis.stale_allows.len();
    println!(
        "analyze: {} files scanned, {n} violation{}, {} allowlisted, {s} stale allowlist entr{}",
        analysis.files_scanned,
        if n == 1 { "" } else { "s" },
        analysis.allowed.len(),
        if s == 1 { "y" } else { "ies" },
    );
    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders the analysis as a JSON object (hand-rolled; xtask takes no
/// dependencies). Violations and allowed entries carry the same fields the
/// human-readable output shows; stale allowlist entries are raw strings.
fn analysis_json(analysis: &xtask::rules::Analysis) -> String {
    fn violation(v: &xtask::rules::Violation) -> String {
        format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"token\":{},\"hint\":{}}}",
            json_str(v.rule),
            json_str(&v.path),
            v.line,
            json_str(&v.token),
            json_str(&v.hint)
        )
    }
    let list = |vs: &[xtask::rules::Violation]| vs.iter().map(violation).collect::<Vec<_>>().join(",");
    let stale = analysis.stale_allows.iter().map(|s| json_str(s)).collect::<Vec<_>>().join(",");
    format!(
        "{{\"files_scanned\":{},\"violations\":[{}],\"allowed\":[{}],\"stale_allows\":[{}],\"clean\":{}}}",
        analysis.files_scanned,
        list(&analysis.violations),
        list(&analysis.allowed),
        stale,
        analysis.is_clean()
    )
}

/// Escapes a string as a JSON string literal (quotes, backslashes, control
/// characters; everything else passes through as UTF-8).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escapes the message part of a GitHub Actions workflow command (`%`, CR
/// and LF are the only characters the runner treats specially there).
fn github_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}
