//! KVS serving comparison: one client machine with ten client instances
//! drives a server running each of the paper's designs — CPU (two-sided
//! RDMA RPC), Smart NIC, and Rambda — on a Zipf-skewed GET/PUT mix.
//!
//! Run: `cargo run --release -p rambda-examples --bin kvs_cluster`

use rambda::Testbed;
use rambda_accel::DataLocation;
use rambda_examples::{banner, metric};
use rambda_kvs::designs::{run_cpu, run_rambda, run_smartnic};
use rambda_kvs::store::{KvConfig, KvStore};
use rambda_kvs::{KvsParams, KvsWorkload};

fn main() {
    banner("functional store sanity");
    let mut store = KvStore::new(KvConfig::for_pairs(10_000, 64));
    store.put(7, b"hello rambda".to_vec());
    let (value, trace) = store.get(7);
    metric("GET 7", String::from_utf8_lossy(value.unwrap()).to_string());
    metric("memory accesses for that GET", trace.accesses());

    let testbed = Testbed::default();
    let params = KvsParams::quick().with_zipf(0.9).with_workload(KvsWorkload::WriteIntensive);

    banner("50/50 GET/PUT, zipf 0.9, batch 32");
    let cpu = run_cpu(&testbed, &params);
    let snic = run_smartnic(&testbed, &params);
    let rambda = run_rambda(&testbed, &params, DataLocation::HostDram);
    for (name, stats) in [("CPU x10 cores", &cpu), ("Smart NIC", &snic), ("Rambda", &rambda)] {
        metric(
            name,
            format!(
                "{:>6.2} Mops   avg {:>6.2} us   p99 {:>6.2} us",
                stats.throughput_mops(),
                stats.mean_us(),
                stats.p99_us()
            ),
        );
    }

    banner("key-distribution sensitivity (100% GET)");
    let uniform = KvsParams::quick();
    let zipf = KvsParams::quick().with_zipf(0.9);
    let snic_u = run_smartnic(&testbed, &uniform).throughput_mops();
    let snic_z = run_smartnic(&testbed, &zipf).throughput_mops();
    let rambda_u = run_rambda(&testbed, &uniform, DataLocation::HostDram).throughput_mops();
    let rambda_z = run_rambda(&testbed, &zipf, DataLocation::HostDram).throughput_mops();
    metric("Smart NIC uniform / zipf", format!("{snic_u:.2} / {snic_z:.2} Mops"));
    metric("Rambda    uniform / zipf", format!("{rambda_u:.2} / {rambda_z:.2} Mops"));
    println!("\nThe Smart NIC collapses when the working set misses its on-board cache;");
    println!("Rambda reads host memory coherently and does not care about skew.");
}
