//! Fig. 12: chain-replication transaction latency, HyperLoop vs Rambda-Tx,
//! for value sizes {64 B, 1024 B} and transaction shapes {(0,1), (4,2)}.
//!
//! Expectations: (0,1) is a wash (Rambda a few percent slower); (4,2) gives
//! Rambda a 63–67 % average-latency reduction (64.5–69.1 % at p99), because
//! HyperLoop issues one chain round per KV pair while Rambda issues one
//! combined near-data transaction.

use rambda::Testbed;
use rambda_bench::{ratio, us, Table};
use rambda_txn::{run_hyperloop, run_rambda_tx, TxnParams};
use rambda_workloads::TxnSpec;

fn main() {
    let tb = Testbed::default();
    let mut table = Table::new(
        "Fig. 12 — transaction latency (us), 2-replica chain",
        &["txn (r,w)", "value", "HL avg", "HL p99", "Rambda avg", "Rambda p99", "avg saving"],
    );
    for value in [64u32, 1024] {
        for spec in [TxnSpec::single_write(value), TxnSpec::read_write(value)] {
            let p = TxnParams { txns: 20_000, ..TxnParams::paper(spec) };
            let hl = run_hyperloop(&tb, &p);
            let rt = run_rambda_tx(&tb, &p);
            table.row(vec![
                format!("({},{})", spec.reads, spec.writes),
                format!("{value}B"),
                us(hl.mean_us()),
                us(hl.p99_us()),
                us(rt.mean_us()),
                us(rt.p99_us()),
                format!("{:.1}%", (1.0 - rt.mean_us() / hl.mean_us()) * 100.0),
            ]);
        }
    }
    table.print();
    println!("shape check: (0,1) ~wash; (4,2) saving ~63-67% avg (paper), p99 saving similar.");
    let _ = ratio(1.0);
}
