//! Integration tests for the `--profile-compare` throughput gate: the
//! synthetic-slowdown fixture must fail the gate, the within-tolerance
//! fixture must pass, and the committed floor under `bench/profile-baselines`
//! must itself be a parseable, self-consistent profile.

use std::path::PathBuf;

use xtask::profile::{compare, parse, Profile, GATED_METRIC, NON_GATING, TOLERANCE};

fn fixture(name: &str) -> Profile {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/profile")
        .join(name)
        .join("BENCH_PROFILE.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The negative fixture: micro_designs and txn_latency run at half the
/// floor throughput (an injected event-core slowdown). The gate must fail
/// on exactly those, and not on the near-floor or non-gating sweeps.
#[test]
fn synthetic_slowdown_fails_the_gate() {
    let regressions = compare(&fixture("slow"), &fixture("floor"));
    let sweeps: Vec<&str> = regressions.iter().map(|r| r.sweep.as_str()).collect();
    assert_eq!(sweeps, ["micro_designs", "txn_latency"], "regressions: {regressions:#?}");
    for r in &regressions {
        assert!(r.current < r.threshold);
        assert!((r.threshold - r.floor * (1.0 - TOLERANCE)).abs() < 1e-9);
        // The message a CI log shows names the sweep and both numbers.
        let msg = r.to_string();
        assert!(msg.contains(&r.sweep) && msg.contains(GATED_METRIC), "{msg}");
    }
}

/// faults_sweep is 10x below floor in the slow fixture, but is not gating.
#[test]
fn slowdown_in_non_gating_sweep_is_ignored() {
    assert!(NON_GATING.contains(&"faults_sweep"));
    let regressions = compare(&fixture("slow"), &fixture("floor"));
    assert!(regressions.iter().all(|r| r.sweep != "faults_sweep"), "{regressions:#?}");
}

/// A run that is slower than the floor but within the 40% tolerance passes.
#[test]
fn within_tolerance_run_passes() {
    let regressions = compare(&fixture("ok"), &fixture("floor"));
    assert!(regressions.is_empty(), "{regressions:#?}");
}

/// A floor always accepts itself (guards against an off-by-one that would
/// make freshly recorded floors fail their own gate).
#[test]
fn floor_accepts_itself() {
    let floor = fixture("floor");
    assert!(compare(&floor, &floor).is_empty());
}

/// The committed floor the CI perf-gate job actually uses must parse and
/// carry the gated metric for every gating sweep.
#[test]
fn committed_floor_is_well_formed() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent")
        .join("bench/profile-baselines/BENCH_PROFILE.json");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let floor = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let gating: Vec<&str> = floor.sweep_names().filter(|s| Profile::is_gating(s)).collect();
    assert!(!gating.is_empty(), "committed floor gates no sweeps");
    for sweep in gating {
        let v = floor.metric(sweep, GATED_METRIC);
        assert!(v.is_some_and(|v| v > 0.0), "{sweep} lacks a positive {GATED_METRIC}");
    }
    assert!(compare(&floor, &floor).is_empty());
}
