//! DLRM query workloads: six Amazon-Review dataset stand-ins (Sec. VI-D).
//!
//! The real datasets are review logs; what the evaluation depends on is
//! (1) the embedding-table size, (2) the query length ("pooling factor")
//! distribution, and (3) how much of the lookup traffic MERCI's memoization
//! tables absorb (the co-occurrence clustering of each category). Each
//! profile captures those three quantities, calibrated to the ranges the
//! MERCI paper reports for the same six categories.

use rambda_des::SimRng;
use serde::{Deserialize, Serialize};

use crate::zipf::Zipf;

/// A dataset profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DlrmProfile {
    /// Dataset name as the paper abbreviates it.
    pub name: &'static str,
    /// Embedding-table rows (items in the category).
    pub rows: u64,
    /// Mean features per query (pooling factor).
    pub mean_features: f64,
    /// Fraction of feature lookups absorbed by MERCI memoization tables
    /// built at 0.25× the embedding size.
    pub memo_hit: f64,
    /// Popularity skew of item accesses.
    pub zipf_theta: f64,
    /// Probability that a feature's cluster partner co-occurs in the same
    /// query — the co-occurrence structure MERCI's memoization exploits.
    pub co_occur: f64,
}

/// One inference query: the feature (row) indices to gather and reduce.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DlrmQuery {
    /// Embedding rows to gather.
    pub features: Vec<u32>,
}

impl DlrmQuery {
    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the query is empty (never produced by the generator).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Request wire size: 4 B per feature id plus a small header.
    pub fn wire_bytes(&self) -> u64 {
        8 + 4 * self.features.len() as u64
    }
}

impl DlrmProfile {
    /// The six evaluation datasets, in the paper's Fig. 13 order.
    pub fn all() -> Vec<DlrmProfile> {
        vec![
            DlrmProfile {
                name: "Electro.",
                rows: 5_000_000,
                mean_features: 40.0,
                memo_hit: 0.45,
                zipf_theta: 0.8,
                co_occur: 0.72,
            },
            DlrmProfile {
                name: "Clothing",
                rows: 8_000_000,
                mean_features: 30.0,
                memo_hit: 0.40,
                zipf_theta: 0.8,
                co_occur: 0.65,
            },
            DlrmProfile {
                name: "Home.",
                rows: 6_000_000,
                mean_features: 35.0,
                memo_hit: 0.42,
                zipf_theta: 0.8,
                co_occur: 0.68,
            },
            DlrmProfile {
                name: "Books",
                rows: 15_000_000,
                mean_features: 80.0,
                memo_hit: 0.55,
                zipf_theta: 0.85,
                co_occur: 0.8,
            },
            DlrmProfile {
                name: "Sports.",
                rows: 4_000_000,
                mean_features: 32.0,
                memo_hit: 0.44,
                zipf_theta: 0.8,
                co_occur: 0.7,
            },
            DlrmProfile {
                name: "Office.",
                rows: 2_500_000,
                mean_features: 26.0,
                memo_hit: 0.38,
                zipf_theta: 0.75,
                co_occur: 0.62,
            },
        ]
    }

    /// Looks a profile up by name.
    pub fn by_name(name: &str) -> Option<DlrmProfile> {
        Self::all().into_iter().find(|p| p.name == name)
    }

    /// Samples a query: geometric-ish length around the pooling factor
    /// (queries are diverse — the reason the paper reports throughput only),
    /// features Zipf-distributed over the rows.
    pub fn sample_query(&self, zipf: &Zipf, rng: &mut SimRng) -> DlrmQuery {
        debug_assert_eq!(zipf.n(), self.rows, "sampler must match the profile");
        // Length: 1 + Geometric(p) with mean = mean_features.
        let p = 1.0 / self.mean_features.max(1.0);
        let mut len = 1usize;
        while !rng.chance(p) && len < 512 {
            len += 1;
        }
        let features = (0..len).map(|_| zipf.sample(rng) as u32).collect();
        DlrmQuery { features }
    }

    /// Builds the matching feature sampler.
    pub fn sampler(&self) -> Zipf {
        Zipf::new(self.rows, self.zipf_theta)
    }

    /// Embedding-table bytes at dimension `dim` with f32 entries.
    pub fn table_bytes(&self, dim: usize) -> u64 {
        self.rows * dim as u64 * 4
    }

    /// MERCI memoization-table bytes (0.25× the embedding table, Sec. VI-D).
    pub fn memo_bytes(&self, dim: usize) -> u64 {
        self.table_bytes(dim) / 4
    }

    /// Expected *effective* lookups per query with MERCI memoization:
    /// memoized groups collapse several lookups into one.
    pub fn effective_lookups(&self, merci: bool) -> f64 {
        if merci {
            // A memo hit covers on average a group of ~2 base lookups with
            // a single memo-table read.
            self.mean_features * (1.0 - self.memo_hit) + self.mean_features * self.memo_hit / 2.0
        } else {
            self.mean_features
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_profiles_in_paper_order() {
        let all = DlrmProfile::all();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].name, "Electro.");
        assert_eq!(all[3].name, "Books");
        assert!(DlrmProfile::by_name("Books").is_some());
        assert!(DlrmProfile::by_name("Nope").is_none());
    }

    #[test]
    fn query_lengths_center_on_pooling_factor() {
        let p = &DlrmProfile::all()[0];
        let zipf = p.sampler();
        let mut rng = SimRng::seed(7);
        let n = 3000;
        let total: usize = (0..n).map(|_| p.sample_query(&zipf, &mut rng).len()).sum();
        let mean = total as f64 / n as f64;
        let rel_err = (mean - p.mean_features).abs() / p.mean_features;
        assert!(rel_err < 0.15, "mean={mean}");
    }

    #[test]
    fn features_within_rows() {
        let p = &DlrmProfile::all()[5];
        let zipf = p.sampler();
        let mut rng = SimRng::seed(8);
        for _ in 0..200 {
            let q = p.sample_query(&zipf, &mut rng);
            assert!(!q.is_empty());
            assert!(q.features.iter().all(|&f| (f as u64) < p.rows));
            assert_eq!(q.wire_bytes(), 8 + 4 * q.len() as u64);
        }
    }

    #[test]
    fn merci_reduces_effective_lookups() {
        for p in DlrmProfile::all() {
            assert!(p.effective_lookups(true) < p.effective_lookups(false));
            assert!(p.effective_lookups(true) > 0.0);
        }
    }

    #[test]
    fn table_sizes() {
        let p = DlrmProfile::by_name("Books").unwrap();
        assert_eq!(p.table_bytes(64), 15_000_000 * 256);
        assert_eq!(p.memo_bytes(64) * 4, p.table_bytes(64));
    }
}
