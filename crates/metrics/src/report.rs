//! Per-stage latency recording and the serializable run report.
//!
//! A runner threads a [`StageRecorder`] through its serve closure: each
//! request opens a [`ReqTrace`] at its issue time and cuts the critical
//! path into named legs (`doorbell`, `fabric`, `coherence`, `apu_compute`,
//! `nvm_persist`, ...). Because the legs partition the issue→completion
//! interval exactly, the report can assert a hard identity — the stage sums
//! equal the total sum to the picosecond — which catches any runner that
//! drops or double-counts a leg.

use std::collections::BTreeMap;

use rambda_des::{Histogram, SimTime, Span};

use crate::event_core::EventCoreSummary;
use crate::json::Json;
use crate::scope::ScopesSummary;
use crate::set::MetricSet;
use crate::timeline::{wait_counter, Timeline, TimelineSummary};

/// Compact, exact summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of all samples, picoseconds.
    pub sum_ps: u128,
    /// Smallest sample (0 when empty).
    pub min_ps: u64,
    /// Largest sample (0 when empty).
    pub max_ps: u64,
    /// Exact arithmetic mean (0 when empty).
    pub mean_ps: u64,
    /// Median, to bucket resolution.
    pub p50_ps: u64,
    /// 99th percentile, to bucket resolution.
    pub p99_ps: u64,
    /// 99.9th percentile, to bucket resolution (the paper's tail arguments
    /// need more than p99).
    pub p999_ps: u64,
}

impl HistSummary {
    /// Summarizes a histogram.
    pub fn of(h: &Histogram) -> Self {
        HistSummary {
            count: h.count(),
            sum_ps: h.sum_ps(),
            min_ps: h.min().as_ps(),
            max_ps: h.max().as_ps(),
            mean_ps: h.mean().as_ps(),
            p50_ps: h.percentile(0.5).as_ps(),
            p99_ps: h.percentile(0.99).as_ps(),
            p999_ps: h.percentile(0.999).as_ps(),
        }
    }

    /// Mean in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean_ps as f64 / 1.0e6
    }

    pub(crate) fn to_json(self) -> Json {
        let mut o = Json::obj();
        o.push("count", Json::U64(self.count));
        // Report sums saturate at u64::MAX in JSON; quick-mode runs are
        // many orders of magnitude below this.
        o.push("sum_ps", Json::U64(u64::try_from(self.sum_ps).unwrap_or(u64::MAX)));
        o.push("min_ps", Json::U64(self.min_ps));
        o.push("max_ps", Json::U64(self.max_ps));
        o.push("mean_ps", Json::U64(self.mean_ps));
        o.push("p50_ps", Json::U64(self.p50_ps));
        o.push("p99_ps", Json::U64(self.p99_ps));
        o.push("p999_ps", Json::U64(self.p999_ps));
        o
    }
}

/// Collects one latency histogram per named pipeline stage, plus the
/// issue→completion total over the same requests.
#[derive(Debug, Clone)]
pub struct StageRecorder {
    active: bool,
    stages: BTreeMap<&'static str, Histogram>,
    total: Histogram,
    timeline: Option<Timeline>,
    timeline_summary: Option<TimelineSummary>,
}

impl StageRecorder {
    /// A recorder that records, including a windowed [`Timeline`] fed by
    /// every [`StageRecorder::request`] completion.
    pub fn active() -> Self {
        StageRecorder {
            active: true,
            stages: BTreeMap::new(),
            total: Histogram::new(),
            timeline: Some(Timeline::default()),
            timeline_summary: None,
        }
    }

    /// A no-op recorder for uninstrumented runs (every call is a cheap
    /// branch, so the plain `run_*` entry points share the serve code).
    pub fn disabled() -> Self {
        StageRecorder {
            active: false,
            stages: BTreeMap::new(),
            total: Histogram::new(),
            timeline: None,
            timeline_summary: None,
        }
    }

    /// Whether this recorder records.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Records `to - from` under `stage`.
    pub fn segment(&mut self, stage: &'static str, from: SimTime, to: SimTime) {
        if !self.active {
            return;
        }
        self.stages.entry(stage).or_default().record(to.saturating_since(from));
    }

    /// Records one request's issue→completion total (and buckets it into
    /// the timeline window its completion falls in).
    pub fn request(&mut self, issued: SimTime, done: SimTime) {
        if !self.active {
            return;
        }
        self.total.record(done.saturating_since(issued));
        if let Some(tl) = &mut self.timeline {
            tl.record(issued, done);
        }
    }

    /// Opens a per-request trace cursor at `issued`.
    pub fn trace(&mut self, issued: SimTime) -> ReqTrace<'_> {
        ReqTrace { rec: self, start: issued, cursor: issued }
    }

    /// The total histogram over all traced requests.
    pub fn total(&self) -> &Histogram {
        &self.total
    }

    /// The histogram for one stage, if any request exercised it.
    pub fn stage(&self, name: &str) -> Option<&Histogram> {
        self.stages.get(name)
    }

    /// Iterates stages in name order.
    pub fn stages(&self) -> impl Iterator<Item = (&'static str, &Histogram)> {
        self.stages.iter().map(|(k, v)| (*k, v))
    }

    /// If the timeline's snapshot grid is due at `now`, returns the tick to
    /// stamp a counter snapshot with (see [`StageRecorder::timeline_snapshot`]).
    pub fn timeline_due(&mut self, now: SimTime) -> Option<SimTime> {
        self.timeline.as_mut()?.due(now)
    }

    /// Stores `set`'s cumulative counters as the timeline snapshot at `tick`.
    pub fn timeline_snapshot(&mut self, tick: SimTime, set: &MetricSet) {
        if let Some(tl) = &mut self.timeline {
            tl.snapshot(tick, set);
        }
    }

    /// Folds the live timeline into its bounded summary; called once by the
    /// report assembly glue with the run makespan and the final resource
    /// counters. A second call overwrites the first.
    pub fn finalize_timeline(&mut self, makespan: Span, finals: &MetricSet) {
        if let Some(tl) = &self.timeline {
            self.timeline_summary = Some(tl.finalize(makespan, finals));
        }
    }

    /// The finalized timeline, if [`StageRecorder::finalize_timeline`] ran.
    pub fn timeline_summary(&self) -> Option<&TimelineSummary> {
        self.timeline_summary.as_ref()
    }
}

/// A cursor cutting one request's critical path into consecutive legs.
///
/// Legs must be cut at non-decreasing times; overlapped work (parallel
/// branches) is folded into a single leg cut at the joining `max`.
#[derive(Debug)]
pub struct ReqTrace<'a> {
    rec: &'a mut StageRecorder,
    start: SimTime,
    cursor: SimTime,
}

impl ReqTrace<'_> {
    /// Ends the current leg at `now`, charging it to `stage`, and moves the
    /// cursor forward.
    pub fn leg(&mut self, stage: &'static str, now: SimTime) {
        debug_assert!(now >= self.cursor, "trace leg {stage} moved backwards");
        self.rec.segment(stage, self.cursor, now);
        self.cursor = self.cursor.max(now);
    }

    /// The current cursor position.
    pub fn now(&self) -> SimTime {
        self.cursor
    }

    /// Closes the trace: records the issue→`done` total.
    ///
    /// For the stage-sum identity to hold, the last leg must have been cut
    /// exactly at `done`; a debug assertion enforces it, and
    /// [`RunReport::validate`] catches it in release builds.
    pub fn finish(self, done: SimTime) {
        debug_assert!(
            !self.rec.active || done == self.cursor,
            "trace finished at {done:?} but legs cover up to {:?}",
            self.cursor
        );
        self.rec.request(self.start, done);
    }
}

/// A serializable report of one closed-loop run: the headline numbers, the
/// per-stage latency breakdown, and the per-resource counters.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Runner name, e.g. `"kvs.rambda"`.
    pub name: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// Measured (post-warm-up) requests.
    pub completed: u64,
    /// Steady-state throughput, operations/second.
    pub throughput_ops: f64,
    /// Simulated time of the last completion (run makespan), picoseconds.
    pub elapsed_ps: u64,
    /// Post-warm-up issue→response latency (what `RunStats` reports).
    pub latency: HistSummary,
    /// Issue→response latency over *all* traced requests (warm-up included).
    pub total: HistSummary,
    /// Per-stage breakdown, name-sorted; sums partition `total` exactly.
    pub stages: Vec<(String, HistSummary)>,
    /// Per-resource counters and utilization gauges.
    pub resources: MetricSet,
    /// Windowed time series (per-window latency + per-resource busy/wait
    /// deltas), when the recorder's timeline was finalized.
    pub timeline: Option<TimelineSummary>,
    /// Deterministic event-core scheduler telemetry, attached via
    /// [`RunReport::attach_event_core`] when profiling is enabled.
    pub event_core: Option<EventCoreSummary>,
    /// Per-entity scoped metrics (per-scope counters/latency/windows, hot
    /// sketches, SLO digest), attached via [`RunReport::attach_scopes`]
    /// when the run enabled scoping.
    pub scopes: Option<ScopesSummary>,
    /// Execution-mode label (`"serial"` or `"conservative(N)"`), set by the
    /// builder. Deliberately *not* serialized by [`RunReport::to_json`]: the
    /// conservative executor's contract is byte-identical report JSON, so
    /// the mode lives on the struct (and in the profile-only `event_core`
    /// exec counters), never in the artifact being diffed.
    pub execution: String,
}

impl RunReport {
    /// Assembles a report from a finished recorder.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        seed: u64,
        completed: u64,
        throughput_ops: f64,
        elapsed: Span,
        latency: HistSummary,
        rec: &StageRecorder,
        resources: MetricSet,
    ) -> Self {
        let mut report = RunReport {
            name: name.to_string(),
            seed,
            completed,
            throughput_ops,
            elapsed_ps: elapsed.as_ps(),
            latency,
            total: HistSummary::of(rec.total()),
            stages: rec.stages().map(|(n, h)| (n.to_string(), HistSummary::of(h))).collect(),
            resources,
            timeline: rec.timeline_summary().cloned(),
            event_core: None,
            scopes: None,
            execution: "serial".to_string(),
        };
        report.publish_utilization();
        report
    }

    /// Attaches the event-core telemetry section: stores the summary and
    /// publishes its counters under the `event_core` prefix so
    /// `validate_event_core` can cross-check them. Runs without profiling
    /// never call this, keeping their JSON byte-identical to the goldens.
    pub fn attach_event_core(&mut self, summary: EventCoreSummary) {
        summary.publish_metrics(&mut self.resources, "event_core");
        self.event_core = Some(summary);
    }

    /// Attaches the scoped-metrics section: stores the summary and
    /// publishes its `scope.*` / `hot.*` / `slo.*` mirror counters so
    /// `validate_scopes` can cross-check them. Unscoped runs never call
    /// this, keeping their JSON byte-identical to the goldens.
    pub fn attach_scopes(&mut self, summary: ScopesSummary) {
        summary.publish_metrics(&mut self.resources);
        self.scopes = Some(summary);
    }

    /// Derives `*.utilization` gauges from published `*.busy_ps` counters
    /// (scaled by the sibling `*.units` counter when present) and the run
    /// makespan.
    fn publish_utilization(&mut self) {
        if self.elapsed_ps == 0 {
            return;
        }
        let busy: Vec<(String, u64, u64)> = self
            .resources
            .counters()
            .filter_map(|(name, value)| {
                let base = name.strip_suffix(".busy_ps")?;
                let units = self.resources.counter(&format!("{base}.units")).unwrap_or(1).max(1);
                Some((base.to_string(), value, units))
            })
            .collect();
        for (base, busy_ps, units) in busy {
            let util = busy_ps as f64 / (units as f64 * self.elapsed_ps as f64);
            self.resources.gauge(&format!("{base}.utilization"), util);
        }
    }

    /// Per-stage `(name, mean_us, share_of_total_time)` rows, name-sorted.
    pub fn breakdown(&self) -> Vec<(String, f64, f64)> {
        let total = self.total.sum_ps.max(1) as f64;
        self.stages.iter().map(|(name, s)| (name.clone(), s.mean_us(), s.sum_ps as f64 / total)).collect()
    }

    /// Checks the report's internal consistency.
    ///
    /// - the stage sums partition the traced total exactly;
    /// - the traced total covers at least the measured requests, and its
    ///   min/max envelope the post-warm-up latency histogram;
    /// - the traced mean and the measured mean agree within a loose factor
    ///   (warm-up requests differ, but not by orders of magnitude).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let stage_sum: u128 = self.stages.iter().map(|(_, s)| s.sum_ps).sum();
        if stage_sum != self.total.sum_ps {
            return Err(format!(
                "stage sums ({} ps) do not partition the traced total ({} ps)",
                stage_sum, self.total.sum_ps
            ));
        }
        if self.total.count < self.latency.count {
            return Err(format!("traced {} requests but measured {}", self.total.count, self.latency.count));
        }
        if self.latency.count != self.completed {
            return Err(format!(
                "latency histogram holds {} samples for {} completions",
                self.latency.count, self.completed
            ));
        }
        if self.latency.count > 0 {
            if self.total.min_ps > self.latency.min_ps || self.total.max_ps < self.latency.max_ps {
                return Err(format!(
                    "traced envelope [{}, {}] does not contain measured [{}, {}]",
                    self.total.min_ps, self.total.max_ps, self.latency.min_ps, self.latency.max_ps
                ));
            }
            let traced = self.total.mean_ps.max(1) as f64;
            let measured = self.latency.mean_ps.max(1) as f64;
            let ratio = traced / measured;
            if !(0.2..=5.0).contains(&ratio) {
                return Err(format!(
                    "traced mean {} ps and measured mean {} ps disagree (ratio {ratio:.2})",
                    self.total.mean_ps, self.latency.mean_ps
                ));
            }
        }
        self.validate_faults()?;
        self.validate_rnic()?;
        self.validate_event_core()?;
        self.validate_timeline()?;
        self.validate_scopes()
    }

    /// Checks the scoped-metrics conservation identities (analyzer rule
    /// R10 keeps the mirror list in sync with the `scopes` publisher):
    ///
    /// - **histogram conservation** — the per-scope latency histograms
    ///   merge to the traced total bucket-for-bucket, and their counts and
    ///   sums telescope to it exactly;
    /// - **window conservation** — each scope's windows sit on the global
    ///   timeline grid, and per window the scope counts/sums telescope to
    ///   the global window exactly;
    /// - **counter conservation** — per-scope counters sum to the rollup,
    ///   and every rollup counter sharing a name with a global resource
    ///   counter equals it exactly (the fabric's per-link scopes publish
    ///   under global names, so each link's traffic is attributed once);
    /// - **sketch conservation** — the space-saving sketches' monitored
    ///   counts sum to their observation totals, rankings are
    ///   non-increasing with `err ≤ count`, and an exact (`err == 0`)
    ///   hot-scope entry equals its scope's request counter;
    /// - the SLO digest re-derives from the timeline, and the published
    ///   `scope.*` / `hot.*` / `slo.*` counters mirror the section.
    ///
    /// A report without an attached section (every unscoped run) reduces
    /// to `Ok(())`.
    fn validate_scopes(&self) -> Result<(), String> {
        let Some(sc) = &self.scopes else { return Ok(()) };
        if sc.merged != self.total {
            return Err(format!("scope merged summary {:?} != traced total {:?}", sc.merged, self.total));
        }
        let count: u64 = sc.scopes.iter().map(|s| s.latency.count).sum();
        let sum: u128 = sc.scopes.iter().map(|s| s.latency.sum_ps).sum();
        if count != sc.merged.count || sum != sc.merged.sum_ps {
            return Err(format!(
                "per-scope histograms hold {count} samples / {sum} ps, merged says {} / {} ps",
                sc.merged.count, sc.merged.sum_ps
            ));
        }
        for s in &sc.scopes {
            let requests = s.set.counter("requests").unwrap_or(0);
            if requests != s.latency.count {
                return Err(format!(
                    "scope {} counted {requests} requests but recorded {} latencies",
                    s.name, s.latency.count
                ));
            }
            let recorded = s.set.counter("latency_ps").unwrap_or(0);
            if recorded != u64::try_from(s.latency.sum_ps).unwrap_or(u64::MAX) {
                return Err(format!(
                    "scope {} latency_ps counter {recorded} != histogram sum {} ps",
                    s.name, s.latency.sum_ps
                ));
            }
        }
        // Counter conservation: recompute the rollup from the children and
        // hold any name shared with the global resources to the same value.
        let mut recomputed = MetricSet::new();
        for s in &sc.scopes {
            recomputed.merge(&s.set);
        }
        for (name, value) in recomputed.counters() {
            if sc.rollup.counter(name) != Some(value) {
                return Err(format!(
                    "rollup counter {name} = {:?} does not equal the per-scope sum {value}",
                    sc.rollup.counter(name)
                ));
            }
        }
        if sc.rollup.counters().count() != recomputed.counters().count() {
            return Err("rollup carries counters no scope published".to_string());
        }
        for (name, value) in sc.rollup.counters() {
            if let Some(global) = self.resources.counter(name) {
                if global != value {
                    return Err(format!(
                        "scoped counter {name} sums to {value} but the global counter says {global}"
                    ));
                }
            }
        }
        // Window conservation against the global timeline grid.
        match &self.timeline {
            Some(tl) => {
                for s in &sc.scopes {
                    if s.windows.len() != tl.windows.len() {
                        return Err(format!(
                            "scope {} has {} windows on a {}-window global grid",
                            s.name,
                            s.windows.len(),
                            tl.windows.len()
                        ));
                    }
                }
                for (i, global) in tl.windows.iter().enumerate() {
                    let count: u64 = sc.scopes.iter().map(|s| s.windows[i].count).sum();
                    let sum: u128 = sc.scopes.iter().map(|s| s.windows[i].sum_ps).sum();
                    if count != global.count || sum != global.sum_ps {
                        return Err(format!(
                            "window {i}: scopes hold {count} samples / {sum} ps, global window \
                             holds {} / {} ps",
                            global.count, global.sum_ps
                        ));
                    }
                }
            }
            None => {
                if sc.scopes.iter().any(|s| !s.windows.is_empty()) || sc.slo.windows != 0 {
                    return Err("scoped windows present without a global timeline".to_string());
                }
            }
        }
        // Sketch conservation: monitored counts sum to the observation
        // total (a space-saving invariant — every observation lands in
        // exactly one monitored counter, eviction moves mass, never drops
        // it), rankings are ordered, and exact entries match ground truth.
        if sc.top_hits() != sc.keys_observed {
            return Err(format!(
                "hot-key counts sum to {} for {} observations",
                sc.top_hits(),
                sc.keys_observed
            ));
        }
        for rows in sc.hot_keys.windows(2) {
            if rows[0].count < rows[1].count {
                return Err(format!("hot keys out of order: {rows:?}"));
            }
        }
        for row in &sc.hot_keys {
            if row.err > row.count {
                return Err(format!("hot key {} error {} exceeds its count {}", row.key, row.err, row.count));
            }
        }
        let scope_hits: u64 = sc.hot_scopes.iter().map(|r| r.count).sum();
        if scope_hits != sc.merged.count {
            return Err(format!(
                "hot-scope counts sum to {scope_hits} for {} recorded requests",
                sc.merged.count
            ));
        }
        for row in &sc.hot_scopes {
            if row.err > row.count {
                return Err(format!(
                    "hot scope {} error {} exceeds its count {}",
                    row.scope, row.err, row.count
                ));
            }
            if row.err == 0 {
                let truth =
                    sc.scopes.iter().find(|s| s.name == row.scope).map(|s| s.latency.count).unwrap_or(0);
                if row.count != truth {
                    return Err(format!(
                        "exact hot-scope entry {} claims {} requests, scope recorded {truth}",
                        row.scope, row.count
                    ));
                }
            }
        }
        // The SLO digest must re-derive from the timeline it summarizes.
        let derived = crate::scope::SloSummary::derive(sc.slo.target_p99_ps, self.timeline.as_ref());
        if derived != sc.slo {
            return Err(format!(
                "SLO digest {:?} does not re-derive from the timeline ({derived:?})",
                sc.slo
            ));
        }
        // The published counters must mirror the structured section.
        let counter = |name: &str| self.resources.counter(name).unwrap_or(0);
        let mirror: [(&str, u64); 8] = [
            ("scope.count", sc.scopes.len() as u64),
            ("scope.requests", sc.merged.count),
            ("scope.latency_ps", u64::try_from(sc.merged.sum_ps).unwrap_or(u64::MAX)),
            ("hot.keys_tracked", sc.hot_keys.len() as u64),
            ("hot.observed", sc.keys_observed),
            ("hot.top_hits", sc.top_hits()),
            ("slo.violations", sc.slo.violations),
            ("slo.windows", sc.slo.windows),
        ];
        for (name, expect) in mirror {
            if counter(name) != expect {
                return Err(format!(
                    "published counter {name} = {} does not mirror the scopes section ({expect})",
                    counter(name)
                ));
            }
        }
        if self.resources.gauge_value("slo.burn_rate") != Some(sc.slo.burn_rate) {
            return Err(format!(
                "published gauge slo.burn_rate = {:?} does not mirror the section ({})",
                self.resources.gauge_value("slo.burn_rate"),
                sc.slo.burn_rate
            ));
        }
        Ok(())
    }

    /// Checks the event-core conservation identities (analyzer rule R9
    /// keeps this list in sync with the `event_core` publisher):
    ///
    /// - `dispatched == enqueued − cancelled − pending`: every scheduled
    ///   event is fired, cancelled, or still pending — none vanish;
    /// - the tier hits telescope to the total pushes
    ///   (`drain_hits + near_hits + far_hits == enqueued`), and only
    ///   tickets that overflowed to the far tier can be redistributed;
    /// - the per-kind breakdown partitions pushes, pops, and dwell exactly;
    /// - conservative-executor accounting holds: `barriers == windows`,
    ///   `horizon_stalls <= windows * partitions`, and a serial run
    ///   (`partitions == 0`) reports no windows or stalls;
    /// - the counters published under the `event_core` prefix mirror the
    ///   structured section value for value.
    ///
    /// A report without an attached section (every non-profiled run)
    /// reduces to `Ok(())`.
    fn validate_event_core(&self) -> Result<(), String> {
        let Some(ec) = &self.event_core else { return Ok(()) };
        let accounted = ec.cancelled + ec.pending;
        if accounted > ec.enqueued || ec.dispatched != ec.enqueued - accounted {
            return Err(format!(
                "event core dispatched {} events, but {} enqueued − {} cancelled − {} pending",
                ec.dispatched, ec.enqueued, ec.cancelled, ec.pending
            ));
        }
        let tier_hits = ec.drain_hits + ec.near_hits + ec.far_hits;
        if tier_hits != ec.enqueued {
            return Err(format!(
                "event-core tier hits ({} drain + {} near + {} far) do not telescope to {} enqueues",
                ec.drain_hits, ec.near_hits, ec.far_hits, ec.enqueued
            ));
        }
        if ec.redistributed > ec.far_hits {
            return Err(format!(
                "event core redistributed {} tickets but only {} overflowed to the far tier",
                ec.redistributed, ec.far_hits
            ));
        }
        let pushes: u64 = ec.kinds.iter().map(|k| k.pushes).sum();
        let pops: u64 = ec.kinds.iter().map(|k| k.pops).sum();
        let held: u64 = ec.kinds.iter().map(|k| k.held_ps).sum();
        if pushes != ec.enqueued || pops != ec.dispatched || held != ec.dwell_ps {
            return Err(format!(
                "event-core kinds partition {pushes} pushes / {pops} pops / {held} ps dwell, totals \
                 say {} / {} / {} ps",
                ec.enqueued, ec.dispatched, ec.dwell_ps
            ));
        }
        // Conservative-executor accounting: one barrier closes each window,
        // and a stall is a (partition, window) pair — a serial run
        // (partitions == 0) must report no windows at all.
        if ec.barriers != ec.windows {
            return Err(format!(
                "event core crossed {} barriers for {} lookahead windows",
                ec.barriers, ec.windows
            ));
        }
        if ec.horizon_stalls > ec.windows.saturating_mul(ec.partitions) {
            return Err(format!(
                "event core stalled {} times across {} windows × {} partitions",
                ec.horizon_stalls, ec.windows, ec.partitions
            ));
        }
        if ec.partitions == 0 && (ec.windows != 0 || ec.horizon_stalls != 0) {
            return Err(format!(
                "serial run (0 partitions) reports {} windows / {} stalls",
                ec.windows, ec.horizon_stalls
            ));
        }
        // The published counters must mirror the structured section.
        let counter = |name: &str| self.resources.counter(name).unwrap_or(0);
        let mirror: [(&str, u64); 14] = [
            ("event_core.enqueued", ec.enqueued),
            ("event_core.dispatched", ec.dispatched),
            ("event_core.cancelled", ec.cancelled),
            ("event_core.pending", ec.pending),
            ("event_core.dwell_ps", ec.dwell_ps),
            ("event_core.tier.drain_hits", ec.drain_hits),
            ("event_core.tier.near_hits", ec.near_hits),
            ("event_core.tier.far_hits", ec.far_hits),
            ("event_core.tier.reanchors", ec.reanchors),
            ("event_core.tier.redistributed", ec.redistributed),
            ("event_core.exec.partitions", ec.partitions),
            ("event_core.exec.windows", ec.windows),
            ("event_core.exec.barriers", ec.barriers),
            ("event_core.exec.horizon_stalls", ec.horizon_stalls),
        ];
        for (name, expect) in mirror {
            if counter(name) != expect {
                return Err(format!(
                    "published counter {name} = {} does not mirror the event_core section ({expect})",
                    counter(name)
                ));
            }
        }
        let kind_sum = |suffix: &str| -> u64 {
            self.resources
                .counters()
                .filter(|(name, _)| name.starts_with("event_core.kind.") && name.ends_with(suffix))
                .map(|(_, v)| v)
                .sum()
        };
        if kind_sum(".pushes") != ec.enqueued
            || kind_sum(".pops") != ec.dispatched
            || kind_sum(".held_ps") != ec.dwell_ps
        {
            return Err(format!(
                "published event_core.kind.* counters ({} pushes / {} pops / {} ps held) do not \
                 mirror the section totals",
                kind_sum(".pushes"),
                kind_sum(".pops"),
                kind_sum(".held_ps")
            ));
        }
        Ok(())
    }

    /// Checks the cross-layer fault/recovery identities. Every injected
    /// fault must be matched by exactly one detection at some RNIC (drops
    /// and flaps by timeout, corruptions by NACK), and every detection by
    /// either a retransmission or an abandoned operation; the recovery
    /// stall counter mirrors `backoff_ns` exactly. All identities reduce to
    /// `0 == 0` for a healthy-fabric run, which publishes none of these
    /// counters.
    fn validate_faults(&self) -> Result<(), String> {
        let sum = |suffix: &str| -> u64 {
            self.resources.counters().filter(|(name, _)| name.ends_with(suffix)).map(|(_, v)| v).sum()
        };
        let lost = sum(".faults.dropped") + sum(".faults.flapped");
        let timeouts = sum(".timeouts");
        if lost != timeouts {
            return Err(format!("{lost} lost frames (drops + flaps) but {timeouts} timeout detections"));
        }
        let corrupted = sum(".faults.corrupted");
        let nacks = sum(".nacks");
        if corrupted != nacks {
            return Err(format!("{corrupted} corrupted frames but {nacks} NACK detections"));
        }
        let recovered = sum(".retransmits") + sum(".retries_exhausted");
        if timeouts + nacks != recovered {
            return Err(format!(
                "{} loss detections but {recovered} retransmissions + abandoned operations",
                timeouts + nacks
            ));
        }
        let backoff_ns = sum(".backoff_ns");
        let busy_ps = sum(".recovery.busy_ps");
        if backoff_ns * 1000 != busy_ps {
            return Err(format!("backoff_ns {backoff_ns} does not mirror recovery.busy_ps {busy_ps}"));
        }
        Ok(())
    }

    /// Checks the RNIC operation-count identities (analyzer rule R9 keeps
    /// this list in sync with `publish_metrics`). Summed over every
    /// endpoint in the run:
    ///
    /// - `doorbells <= wqes`, and the two are zero together: `post` is the
    ///   only increment site for both, ringing one doorbell per WQE chain
    ///   of at least one entry (chained WQEs after the first ride the
    ///   amortized pipeline path and ring nothing);
    /// - `cqes <= wqes + inbound_writes + inbound_reads`: every CQE is
    ///   caused either by a signaled local posting or by an inbound
    ///   delivery (the two-sided receive path) — completions never
    ///   materialize out of thin air.
    ///
    /// A run that publishes no RNIC counters (the micro designs) reduces
    /// every identity to `0 == 0`.
    fn validate_rnic(&self) -> Result<(), String> {
        let sum = |suffix: &str| -> u64 {
            self.resources.counters().filter(|(name, _)| name.ends_with(suffix)).map(|(_, v)| v).sum()
        };
        let doorbells = sum(".doorbells");
        let wqes = sum(".wqes");
        if doorbells > wqes {
            return Err(format!("{doorbells} doorbells rang for only {wqes} posted WQEs"));
        }
        if (doorbells == 0) != (wqes == 0) {
            return Err(format!("{wqes} WQEs posted but {doorbells} doorbells rang"));
        }
        let cqes = sum(".cqes");
        let inbound = sum(".inbound_writes") + sum(".inbound_reads");
        if cqes > wqes + inbound {
            return Err(format!(
                "{cqes} completions but only {wqes} posted WQEs + {inbound} inbound deliveries"
            ));
        }
        Ok(())
    }

    /// Checks the windowed timeline (when present) against the whole-run
    /// totals:
    ///
    /// - merging the per-window histograms reproduces the traced total
    ///   exactly (same samples, exact merge) — the throughput side of the
    ///   Little's-law cross-check (`Σ window counts == total count` and
    ///   `Σ window sums == total time in system`);
    /// - the windows tile the makespan: minimal in number, covering it;
    /// - every resource with a `*.busy_ps` counter has a delta series, and
    ///   each series telescopes to its final busy/wait counter to the
    ///   picosecond — the busy-time side of the utilization law.
    fn validate_timeline(&self) -> Result<(), String> {
        let Some(tl) = &self.timeline else { return Ok(()) };
        if tl.merged != self.total {
            return Err(format!("timeline merged summary {:?} != traced total {:?}", tl.merged, self.total));
        }
        let window_count: u64 = tl.windows.iter().map(|w| w.count).sum();
        if window_count != self.total.count {
            return Err(format!(
                "timeline windows hold {} samples, total {}",
                window_count, self.total.count
            ));
        }
        let window_sum: u128 = tl.windows.iter().map(|w| w.sum_ps).sum();
        if window_sum != self.total.sum_ps {
            return Err(format!("timeline window sums {} ps, total {} ps", window_sum, self.total.sum_ps));
        }
        let n = tl.windows.len() as u64;
        if n == 0 || tl.window_ps == 0 {
            return Err("timeline has no windows".to_string());
        }
        if tl.elapsed_ps != self.elapsed_ps {
            return Err(format!("timeline elapsed {} ps, report {} ps", tl.elapsed_ps, self.elapsed_ps));
        }
        if n * tl.window_ps < self.elapsed_ps || (n - 1) * tl.window_ps >= self.elapsed_ps.max(1) {
            return Err(format!(
                "{} windows of {} ps do not tile the {} ps makespan",
                n, tl.window_ps, self.elapsed_ps
            ));
        }
        let busy_bases: Vec<&str> =
            self.resources.counters().filter_map(|(name, _)| name.strip_suffix(".busy_ps")).collect();
        if busy_bases.len() != tl.resources.len() {
            return Err(format!(
                "timeline carries {} resource series for {} busy counters",
                tl.resources.len(),
                busy_bases.len()
            ));
        }
        for series in &tl.resources {
            if series.busy_delta_ps.len() != tl.windows.len()
                || series.wait_delta_ps.len() != tl.windows.len()
            {
                return Err(format!("resource {} series length mismatch", series.name));
            }
            let busy: u64 = series.busy_delta_ps.iter().sum();
            let expect = self.resources.counter(&format!("{}.busy_ps", series.name)).unwrap_or(0);
            if busy != expect {
                return Err(format!(
                    "resource {} busy deltas sum to {} ps, counter says {} ps",
                    series.name, busy, expect
                ));
            }
            let wait: u64 = series.wait_delta_ps.iter().sum();
            let wait_expect = wait_counter(&self.resources, &series.name)
                .and_then(|name| self.resources.counter(&name))
                .unwrap_or(0);
            if wait != wait_expect {
                return Err(format!(
                    "resource {} wait deltas sum to {} ps, counter says {} ps",
                    series.name, wait, wait_expect
                ));
            }
        }
        Ok(())
    }

    /// Renders the report as a deterministic JSON value.
    pub fn to_json(&self) -> Json {
        let mut stages = Json::obj();
        for (name, summary) in &self.stages {
            stages.push(name, summary.to_json());
        }
        let mut out = Json::obj();
        out.push("name", Json::Str(self.name.clone()));
        out.push("seed", Json::U64(self.seed));
        out.push("completed", Json::U64(self.completed));
        out.push("throughput_ops", Json::F64(self.throughput_ops));
        out.push("elapsed_ps", Json::U64(self.elapsed_ps));
        out.push("latency", self.latency.to_json());
        out.push("total", self.total.to_json());
        out.push("stages", stages);
        out.push("resources", self.resources.to_json());
        if let Some(tl) = &self.timeline {
            out.push("timeline", tl.to_json());
        }
        if let Some(ec) = &self.event_core {
            out.push("event_core", ec.to_json());
        }
        if let Some(sc) = &self.scopes {
            out.push("scopes", sc.to_json());
        }
        out
    }

    /// Renders the report as canonical pretty-printed JSON (the golden-file
    /// format: byte-identical across runs for identical inputs).
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_ns(n)
    }

    #[test]
    fn trace_legs_partition_the_total() {
        let mut rec = StageRecorder::active();
        for i in 0..10u64 {
            let t0 = ns(i * 100);
            let mut tr = rec.trace(t0);
            tr.leg("fabric", t0 + Span::from_ns(30));
            tr.leg("compute", t0 + Span::from_ns(70));
            let done = t0 + Span::from_ns(70);
            tr.finish(done);
        }
        let stage_sum: u128 = rec.stages().map(|(_, h)| h.sum_ps()).sum();
        assert_eq!(stage_sum, rec.total().sum_ps());
        assert_eq!(rec.total().count(), 10);
        assert_eq!(rec.stage("fabric").unwrap().mean(), Span::from_ns(30));
        assert_eq!(rec.stage("compute").unwrap().mean(), Span::from_ns(40));
        assert!(rec.stage("missing").is_none());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut rec = StageRecorder::disabled();
        let mut tr = rec.trace(ns(0));
        tr.leg("fabric", ns(10));
        tr.finish(ns(10));
        assert!(!rec.is_active());
        assert_eq!(rec.total().count(), 0);
        assert_eq!(rec.stages().count(), 0);
    }

    fn sample_report(drop_a_leg: bool) -> RunReport {
        let mut rec = StageRecorder::active();
        let mut latency = Histogram::new();
        for i in 0..20u64 {
            let t0 = ns(i * 1000);
            let mid = t0 + Span::from_ns(400);
            let done = t0 + Span::from_ns(1000);
            let mut tr = rec.trace(t0);
            tr.leg("first", mid);
            if !drop_a_leg {
                tr.leg("second", done);
            }
            rec.request(t0, done);
            if i >= 2 {
                latency.record(done - t0);
            }
        }
        let mut resources = MetricSet::new();
        resources.set("cpu.busy_ps", 10_000_000);
        resources.set("cpu.units", 4);
        RunReport::new(
            "test.run",
            7,
            18,
            1.0e6,
            Span::from_us(20),
            HistSummary::of(&latency),
            &rec,
            resources,
        )
    }

    #[test]
    fn complete_report_validates() {
        let report = sample_report(false);
        report.validate().expect("report should be consistent");
        // Utilization derived from busy_ps, units, and the makespan.
        let util = report.resources.gauge_value("cpu.utilization").unwrap();
        assert!((util - 10.0e6 / (4.0 * 20.0e6)).abs() < 1e-12, "{util}");
        let rows = report.breakdown();
        assert_eq!(rows.len(), 2);
        let share: f64 = rows.iter().map(|(_, _, s)| s).sum();
        assert!((share - 1.0).abs() < 1e-9, "shares sum to {share}");
    }

    #[test]
    fn dropped_leg_fails_validation() {
        let report = sample_report(true);
        let err = report.validate().unwrap_err();
        assert!(err.contains("partition"), "{err}");
    }

    #[test]
    fn report_json_is_deterministic() {
        let a = sample_report(false).to_json_string();
        let b = sample_report(false).to_json_string();
        assert_eq!(a, b);
        assert!(a.contains("\"name\": \"test.run\""));
        assert!(a.contains("\"first\""));
        assert!(a.contains("cpu.utilization"));
    }

    #[test]
    fn summary_percentiles_are_ordered() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(Span::from_ns(i));
        }
        let s = HistSummary::of(&h);
        assert!(s.p50_ps <= s.p99_ps, "{s:?}");
        assert!(s.p99_ps <= s.p999_ps, "{s:?}");
        assert!(s.p999_ps <= s.max_ps, "{s:?}");
        // p99.9 lands within bucket resolution of the exact 9990 ns.
        let exact = 9_990_000.0;
        assert!((s.p999_ps as f64 - exact).abs() / exact < 0.07, "{s:?}");
    }

    #[test]
    fn fault_recovery_identities_are_checked() {
        let mut report = sample_report(false);
        report.resources.set("net.faults.dropped", 2);
        report.resources.set("net.faults.flapped", 1);
        report.resources.set("net.faults.corrupted", 2);
        report.resources.set("client.rnic.timeouts", 3);
        report.resources.set("client.rnic.nacks", 2);
        report.resources.set("client.rnic.retransmits", 4);
        report.resources.set("client.rnic.retries_exhausted", 1);
        report.resources.set("client.rnic.backoff_ns", 50);
        report.resources.set("client.rnic.recovery.busy_ps", 50_000);
        report.validate().expect("consistent fault counters");

        report.resources.set("client.rnic.retransmits", 5);
        let err = report.validate().unwrap_err();
        assert!(err.contains("loss detections"), "{err}");
        report.resources.set("client.rnic.retransmits", 4);

        report.resources.set("client.rnic.backoff_ns", 51);
        let err = report.validate().unwrap_err();
        assert!(err.contains("mirror"), "{err}");
        report.resources.set("client.rnic.backoff_ns", 50);

        report.resources.set("net.faults.dropped", 9);
        let err = report.validate().unwrap_err();
        assert!(err.contains("timeout detections"), "{err}");
    }

    #[test]
    fn event_core_identities_are_checked() {
        use crate::event_core::{EventCoreSummary, EventKindSummary};
        let mut report = sample_report(false);
        report.validate().expect("no section, nothing to check");
        let ec = EventCoreSummary {
            enqueued: 10,
            dispatched: 9,
            cancelled: 0,
            pending: 1,
            dwell_ps: 500,
            drain_hits: 2,
            near_hits: 7,
            far_hits: 1,
            reanchors: 1,
            redistributed: 1,
            partitions: 2,
            windows: 3,
            barriers: 3,
            horizon_stalls: 4,
            kinds: vec![EventKindSummary { name: "event".to_string(), pushes: 10, pops: 9, held_ps: 500 }],
        };
        report.attach_event_core(ec);
        report.validate().expect("consistent event-core section");
        assert!(report.to_json_string().contains("\"event_core\""));

        // A published counter that drifts from the section fails the mirror.
        report.resources.set("event_core.enqueued", 11);
        let err = report.validate().unwrap_err();
        assert!(err.contains("mirror"), "{err}");
        report.resources.set("event_core.enqueued", 10);
        report.validate().expect("restored");

        // Losing a pending event breaks the dispatch conservation identity.
        report.event_core.as_mut().unwrap().pending = 0;
        let err = report.validate().unwrap_err();
        assert!(err.contains("dispatched"), "{err}");
        report.event_core.as_mut().unwrap().pending = 1;

        // Tier hits must telescope to the enqueues.
        report.event_core.as_mut().unwrap().near_hits = 6;
        let err = report.validate().unwrap_err();
        assert!(err.contains("telescope"), "{err}");
        report.event_core.as_mut().unwrap().near_hits = 7;

        // Conservative-executor identities: barriers track windows one to
        // one, stalls are bounded by windows × partitions, and a serial run
        // (0 partitions) reports no windows.
        report.event_core.as_mut().unwrap().barriers = 2;
        let err = report.validate().unwrap_err();
        assert!(err.contains("barriers"), "{err}");
        report.event_core.as_mut().unwrap().barriers = 3;
        report.event_core.as_mut().unwrap().horizon_stalls = 7;
        let err = report.validate().unwrap_err();
        assert!(err.contains("stalled"), "{err}");
        report.event_core.as_mut().unwrap().horizon_stalls = 0;
        report.event_core.as_mut().unwrap().partitions = 0;
        let err = report.validate().unwrap_err();
        assert!(err.contains("serial run"), "{err}");
    }

    /// Builds a fully-scoped report the way `SimBuilder::run` does: trace
    /// every request, scope-record every request, finalize the timeline,
    /// then attach the scoped summary. `skip_one_scope_record` drops one
    /// request from the scoped view to break histogram conservation.
    fn scoped_report(skip_one_scope_record: bool) -> RunReport {
        use crate::scope::{ScopeConfig, ScopedMetrics};
        let mut rec = StageRecorder::active();
        let mut scopes = ScopedMetrics::active(ScopeConfig { top_k: 2, slo_p99_ps: 500_000 });
        let mut latency = Histogram::new();
        for i in 0..20u64 {
            let t0 = ns(i * 1000);
            let done = t0 + Span::from_ns(1000);
            let mut tr = rec.trace(t0);
            tr.leg("serve", done);
            rec.request(t0, done);
            if !(skip_one_scope_record && i == 7) {
                scopes.record(if i % 4 == 0 { "shard/0" } else { "shard/1" }, t0, done);
            }
            scopes.observe_key(i % 3);
            if i >= 2 {
                latency.record(done - t0);
            }
        }
        let mut resources = MetricSet::new();
        resources.set("cpu.busy_ps", 10_000_000);
        resources.set("cpu.units", 4);
        rec.finalize_timeline(Span::from_us(20), &resources);
        let mut report = RunReport::new(
            "test.scoped",
            7,
            18,
            1.0e6,
            Span::from_us(20),
            HistSummary::of(&latency),
            &rec,
            resources,
        );
        report.attach_scopes(scopes.finalize(report.timeline.as_ref()));
        report
    }

    #[test]
    fn scoped_report_validates_and_serializes() {
        let report = scoped_report(false);
        report.validate().expect("scoped report should be consistent");
        let text = report.to_json_string();
        assert!(text.contains("\"scopes\""), "{text}");
        assert!(text.contains("\"shard/0\""), "{text}");
        assert!(text.contains("\"hot_keys\""), "{text}");
        assert!(text.contains("\"burn_rate\""), "{text}");
        assert_eq!(report.resources.counter("scope.requests"), Some(20));
        assert_eq!(report.resources.counter("hot.observed"), Some(20));
        // Byte-identical across identical rebuilds.
        assert_eq!(text, scoped_report(false).to_json_string());
    }

    #[test]
    fn unscoped_request_breaks_histogram_conservation() {
        let report = scoped_report(true);
        let err = report.validate().unwrap_err();
        assert!(err.contains("scope merged"), "{err}");
    }

    #[test]
    fn scope_identities_catch_tampering() {
        // A drifted mirror counter.
        let mut report = scoped_report(false);
        report.resources.set("scope.requests", 21);
        let err = report.validate().unwrap_err();
        assert!(err.contains("mirror"), "{err}");

        // A scope whose counter disagrees with its own histogram.
        let mut report = scoped_report(false);
        report.scopes.as_mut().unwrap().scopes[0].set.add("requests", 1);
        let err = report.validate().unwrap_err();
        assert!(err.contains("requests"), "{err}");

        // An SLO digest that no longer re-derives from the timeline.
        let mut report = scoped_report(false);
        report.scopes.as_mut().unwrap().slo.violations += 1;
        let err = report.validate().unwrap_err();
        assert!(err.contains("re-derive"), "{err}");

        // A hot-scope entry claiming exactness with a wrong count.
        let mut report = scoped_report(false);
        {
            let sc = report.scopes.as_mut().unwrap();
            sc.hot_scopes[0].count += 1;
            sc.hot_scopes[1].count -= 1;
        }
        let err = report.validate().unwrap_err();
        assert!(err.contains("hot-scope") || err.contains("exact"), "{err}");
    }

    #[test]
    fn mismatched_latency_count_fails_validation() {
        let mut report = sample_report(false);
        report.completed += 1;
        let err = report.validate().unwrap_err();
        assert!(err.contains("completions"), "{err}");
    }
}
