//! The Rambda cc-accelerator (Fig. 4).
//!
//! The accelerator consists of infrastructure shared by every application —
//! coherence controller + TLB, local cache with the pinned cpoll region,
//! round-robin scheduler, a table-based FSM supporting 256 outstanding
//! requests, and the RDMA SQ handler — plus the **APU** (application
//! processing unit), the only application-specific block. This crate models
//! the infrastructure and defines the [`Apu`] trait that `rambda-kvs`,
//! `rambda-txn`, and `rambda-dlrm` implement.
//!
//! Timing honesty: every memory request issued by the APU passes through the
//! coherence controller's serial issue throttle and the cc-interconnect (for
//! host-resident data) or the local memory controller (Rambda-LD/LH). This
//! reproduces both the prototype's documented soft-logic bottleneck and the
//! envisioned local-memory variants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apu;
mod engine;

pub mod scheduler;
pub mod tlb;

pub use apu::{Apu, ApuCtx};
pub use engine::{AccelConfig, AccelEngine, AccelStats, DataLocation};
pub use scheduler::{RoundRobin, SchedulePolicy, StrictPriority, WeightedRoundRobin};
pub use tlb::{Tlb, TlbStats};
