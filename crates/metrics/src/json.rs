//! A tiny deterministic JSON value + encoder.
//!
//! The golden-report tests gate on byte-identical output across runs and
//! machines, so the encoder makes every choice explicitly: object keys keep
//! their insertion order (producers insert from `BTreeMap`s, so keys arrive
//! sorted), floats render with Rust's shortest-round-trip formatting, and
//! non-finite floats become `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every counter in a report).
    U64(u64),
    /// A float (throughput, utilization). Non-finite renders as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in the order they were inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Renders the value as pretty-printed JSON with two-space indentation
    /// and a trailing newline (the canonical golden-file format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a ".0" on integral floats and is the
                    // shortest representation that round-trips.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => Self::write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    Self::pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                Self::pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    Self::pad(out, indent + 1);
                    Self::write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                Self::pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict subset: no duplicate-key detection,
    /// numbers become [`Json::U64`] when they are non-negative integers that
    /// fit, [`Json::F64`] otherwise). Object key order is preserved.
    ///
    /// Exists so exporters can self-validate their output (the trace smoke
    /// checks round-trip the Chrome trace through this) without external
    /// dependencies.
    ///
    /// # Errors
    ///
    /// Returns a `position: message` description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("{pos}: trailing data after JSON value"));
        }
        Ok(value)
    }

    /// Looks up a field of an object, if `self` is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn pad(out: &mut String, indent: usize) {
        for _ in 0..indent {
            out.push_str("  ");
        }
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("{pos}: expected `{}`", b as char, pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(format!("{pos}: unexpected end of input", pos = *pos)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("{pos}: expected `,` or `]`", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("{pos}: expected `,` or `}}`", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("{pos}: expected `{lit}`", pos = *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(format!("{pos}: unterminated string", pos = *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or_else(|| format!("{pos}: bad escape", pos = *pos))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("{pos}: bad \\u escape", pos = *pos))?;
                        *pos += 4;
                        // Surrogate pairs are not needed by our own output;
                        // lone surrogates decode to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("{pos}: bad escape `\\{}`", *other as char, pos = *pos)),
                }
            }
            Some(_) => {
                // Consume the whole run of plain bytes up to the next quote
                // or escape and validate it once: validating from `pos` to
                // the end of input per character would make parsing
                // quadratic in document size.
                let run = *pos;
                while bytes.get(*pos).is_some_and(|b| *b != b'"' && *b != b'\\') {
                    *pos += 1;
                }
                let chunk =
                    std::str::from_utf8(&bytes[run..*pos]).map_err(|_| format!("{run}: invalid UTF-8"))?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len() && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| format!("{start}: invalid number"))?;
    if !text.contains(&['.', 'e', 'E', '-'][..]) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
    }
    text.parse::<f64>().map(Json::F64).map_err(|_| format!("{start}: invalid number `{text}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::U64(42).render(), "42\n");
        assert_eq!(Json::F64(1.0).render(), "1.0\n");
        assert_eq!(Json::F64(f64::NAN).render(), "null\n");
        assert_eq!(Json::Str("hi".into()).render(), "\"hi\"\n");
    }

    #[test]
    fn strings_escape_controls() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let mut o = Json::obj();
        o.push("z", Json::U64(1)).push("a", Json::U64(2));
        assert_eq!(o.render(), "{\n  \"z\": 1,\n  \"a\": 2\n}\n");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::obj().render(), "{}\n");
        assert_eq!(Json::Arr(Vec::new()).render(), "[]\n");
    }

    #[test]
    fn nested_structure_indents() {
        let mut inner = Json::obj();
        inner.push("k", Json::U64(1));
        let mut outer = Json::obj();
        outer.push("arr", Json::Arr(vec![Json::U64(1), Json::U64(2)]));
        outer.push("obj", inner);
        let expect = "{\n  \"arr\": [\n    1,\n    2\n  ],\n  \"obj\": {\n    \"k\": 1\n  }\n}\n";
        assert_eq!(outer.render(), expect);
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn push_on_scalar_panics() {
        Json::U64(1).push("k", Json::Null);
    }

    #[test]
    fn parse_round_trips_rendered_output() {
        let mut inner = Json::obj();
        inner.push("k", Json::U64(1)).push("f", Json::F64(2.5)).push("s", Json::Str("a\"b\n".into()));
        let mut outer = Json::obj();
        outer.push("arr", Json::Arr(vec![Json::Null, Json::Bool(false), inner]));
        let text = outer.render();
        let back = Json::parse(&text).expect("round trip parses");
        assert_eq!(back, outer);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(Json::parse("4.5").unwrap(), Json::F64(4.5));
        assert_eq!(Json::parse("-3").unwrap(), Json::F64(-3.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn get_walks_objects() {
        let parsed = Json::parse("{\"a\": {\"b\": 7}}").unwrap();
        assert_eq!(parsed.get("a").and_then(|a| a.get("b")), Some(&Json::U64(7)));
        assert_eq!(parsed.get("missing"), None);
        assert_eq!(Json::U64(1).get("a"), None);
    }
}
