//! Clean fixture for rule R9 over the metrics crate's own event-core
//! publisher: the conservation identity mentions every scheduler counter
//! suffix `publish_metrics` emits. Never compiled — scanned by
//! xtask/tests.

#![forbid(unsafe_code)]

/// Event-core telemetry summary.
pub struct EventCoreSummary;

impl EventCoreSummary {
    /// Publishes the scheduler counters under `prefix`.
    pub fn publish_metrics(&self, m: &mut MetricSet, prefix: &str) {
        m.set(&format!("{prefix}.enqueued"), 3);
        m.set(&format!("{prefix}.dispatched"), 3);
        m.set(&format!("{prefix}.dwell_ps"), 41);
    }
}

/// Dispatch and dwell accounting over the published counters.
pub fn validate_event_core(m: &MetricSet) -> Result<(), String> {
    let enq = m.counter(".enqueued").unwrap_or(0);
    let disp = m.counter(".dispatched").unwrap_or(0);
    if disp > enq {
        return Err(format!("{disp} dispatched but only {enq} enqueued"));
    }
    if disp == 0 && m.counter(".dwell_ps").unwrap_or(0) > 0 {
        return Err("dwell time accrued with nothing dispatched".to_string());
    }
    Ok(())
}
