//! Negative fixture for rule R9: the conservation identity only mentions
//! `.wqes`, so `.doorbells` and `.cqes` published by the rnic fixture are
//! unguarded. The error prose names "doorbells" but contains whitespace, so
//! it must NOT count as coverage. Never compiled — scanned by xtask/tests.

#![forbid(unsafe_code)]

/// Summed counters grouped by suffix.
pub struct Totals;

/// Checks WQE accounting only: doorbells and cqes are left unguarded.
pub fn validate_rnic(totals: &Totals) -> Result<(), String> {
    let wqes = totals.sum(".wqes");
    if wqes > 1_000_000 {
        return Err(format!("{wqes} WQEs posted but the doorbells disagree"));
    }
    Ok(())
}
