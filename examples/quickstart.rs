//! Quickstart: the smallest end-to-end Rambda tour.
//!
//! 1. Pass messages through the lock-free ring-buffer abstraction with
//!    credit flow control (the unified communication layer, Sec. III-A).
//! 2. Watch cpoll turn a coherence invalidation into a notification
//!    (Sec. III-B).
//! 3. Serve the linked-list microbenchmark on the simulated testbed and
//!    compare a CPU core with the Rambda accelerator (Sec. VI-A).
//!
//! Run: `cargo run --release -p rambda-examples --bin quickstart`

use rambda::micro::{run_cpu, run_rambda, MicroParams};
use rambda::Testbed;
use rambda_accel::DataLocation;
use rambda_coherence::{AgentId, CpollChecker, Directory, LineAddr};
use rambda_examples::{banner, metric};
use rambda_ring::BufferPair;

fn main() {
    banner("1. ring buffers with credit flow control");
    let (mut client, mut server) = BufferPair::with_capacity::<u64, u64>(8);
    while client.can_issue() {
        client.issue(client.issued()).unwrap();
    }
    metric("requests issued before credits ran out", client.in_flight());
    let mut served = 0;
    while let Some(req) = server.next_request() {
        server.respond(req * 2).unwrap();
        served += 1;
    }
    let mut last = 0;
    while let Some(resp) = client.poll() {
        last = resp;
    }
    metric("requests served", served);
    metric("last response (request * 2)", last);
    metric("credits restored", client.can_issue());

    banner("2. cpoll: coherence-assisted notification");
    let mut dir = Directory::new();
    let mut checker = CpollChecker::new(64 * 1024);
    checker.register(0x1000, 16 * 1024, 1024).unwrap(); // 16 rings
    let slot = LineAddr::containing(0x1000 + 5 * 1024); // ring 5, entry 0
    dir.write(AgentId::ACCEL, slot); // accelerator pins/owns the line
    let events = dir.write(AgentId::IO, slot); // RNIC delivers a request
    let note = events.iter().find_map(|e| checker.observe(e)).unwrap();
    metric("coherence events from the DMA write", events.len());
    metric("cpoll dispatched to ring", note.ring);

    banner("3. microbenchmark on the simulated testbed");
    let testbed = Testbed::default();
    let params = MicroParams::quick();
    let cpu = run_cpu(&testbed, params, 1, 16);
    let rambda = run_rambda(&testbed, params, DataLocation::HostDram, true, 42);
    metric("one CPU core (Mops)", format!("{:.2}", cpu.throughput_mops()));
    metric("Rambda accelerator (Mops)", format!("{:.2}", rambda.throughput_mops()));
    metric("speedup", format!("{:.1}x", rambda.throughput_mops() / cpu.throughput_mops()));
    metric("Rambda mean latency (us)", format!("{:.2}", rambda.mean_us()));
    println!("\nNext: kvs_cluster, chain_txn, dlrm_inference.");
}
