//! Negative fixture for R5: print-family macros in a simulation crate.
#![forbid(unsafe_code)]

pub fn noisy_progress() {
    println!("progress: 50%");
    eprintln!("warning: queue running deep");
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_inside_tests_are_fine() {
        println!("diagnostics in a test module must not be flagged");
    }
}
