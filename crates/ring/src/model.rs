//! A loom-style exhaustive interleaving checker for the SPSC ring.
//!
//! The `unsafe` in [`crate::spsc`] is justified by a protocol argument: the
//! per-slot sequence word hands each cell to exactly one side at a time.
//! This module machine-checks that argument. It runs a *shadow-state model*
//! of the ring — every shared-memory access of `push`/`pop` is a separate
//! scheduler step over explicit model state — under a deterministic
//! scheduler that explores **every** interleaving of producer and consumer
//! steps (depth-first, no randomness), asserting at each step:
//!
//! * **no torn reads** — a slot's two value halves are written in two
//!   separate steps; the consumer must never observe a half-written or
//!   mismatched pair (this is exactly what the sequence protocol prevents);
//! * **no lost or duplicated elements** — values pop in FIFO order, each
//!   exactly once;
//! * **bounded occupancy** — the shared cursors never drift more than
//!   `capacity` apart;
//! * **deadlock freedom** — if neither side can step, both must be done.
//!
//! [`explore_pair`] applies the same scheduler to a shadow model of the
//! credit-based [`crate::BufferPair`], with ring operations atomic and the
//! *protocol* interleaved: it proves credit conservation (`issued =
//! completed + in-flight`, in-flight ≤ capacity) and that `respond` can
//! never overflow the response ring while the client respects its window —
//! the claim `ServerEnd::respond` documents.
//!
//! The model is bounded (small capacity, a few items) but exhaustive within
//! the bound; the configurations in the tests explore tens of thousands of
//! distinct schedules in well under a second.

/// Bounds for an SPSC-ring exploration.
#[derive(Debug, Clone, Copy)]
pub struct SpscConfig {
    /// Ring capacity (slots). Power of two not required in the model.
    pub capacity: usize,
    /// Values the producer pushes (`0..items`, so FIFO checks are trivial).
    pub items: usize,
    /// `false`: every shared-memory access is its own scheduler step
    /// (memory-level interleaving — the expensive, interesting mode).
    /// `true`: each `push`/`pop` is one atomic step (protocol-level — cheap,
    /// lets the bound cover several wraparound laps).
    pub atomic_ops: bool,
}

/// Bounds for a credit-based buffer-pair exploration.
#[derive(Debug, Clone, Copy)]
pub struct PairConfig {
    /// Capacity of each ring (= the credit window).
    pub capacity: usize,
    /// Requests the client issues.
    pub requests: usize,
}

/// The result of a successful exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Complete schedules (maximal interleavings) explored. Every one
    /// satisfied every invariant.
    pub schedules: u64,
    /// Steps in the longest schedule.
    pub deepest: usize,
}

/// An invariant violation, with the schedule that reached it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelViolation {
    /// What went wrong.
    pub message: String,
    /// The thread/action choice at each step leading to the violation
    /// (indices into the model's action list) — replayable because the
    /// scheduler is deterministic.
    pub schedule: Vec<u8>,
}

impl std::fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (schedule {:?})", self.message, self.schedule)
    }
}

impl std::error::Error for ModelViolation {}

/// A system the deterministic scheduler can explore: a fixed set of
/// actions, each enabled or not in the current state.
trait Model: Clone {
    /// Number of distinct actions (scheduler branching factor).
    const ACTIONS: u8;
    /// Whether `action` can fire in the current state.
    fn enabled(&self, action: u8) -> bool;
    /// Fires `action`; returns an invariant-violation message if the step
    /// observed a broken invariant.
    fn step(&mut self, action: u8) -> Result<(), String>;
    /// Whether the run reached its intended end state (used for the
    /// deadlock check and final assertions).
    fn done(&self) -> Result<bool, String>;
}

/// Depth-first exhaustive exploration of every maximal schedule of `model`.
fn explore<M: Model>(model: &M) -> Result<Exploration, ModelViolation> {
    let mut result = Exploration { schedules: 0, deepest: 0 };
    let mut trail: Vec<u8> = Vec::new();
    dfs(model, &mut trail, &mut result)?;
    Ok(result)
}

fn dfs<M: Model>(model: &M, trail: &mut Vec<u8>, result: &mut Exploration) -> Result<(), ModelViolation> {
    let violation = |message: String, trail: &[u8]| ModelViolation { message, schedule: trail.to_vec() };
    let mut any = false;
    for action in 0..M::ACTIONS {
        if !model.enabled(action) {
            continue;
        }
        any = true;
        let mut next = model.clone();
        trail.push(action);
        next.step(action).map_err(|m| violation(m, trail))?;
        dfs(&next, trail, result)?;
        trail.pop();
    }
    if !any {
        // Maximal schedule: nothing can move. Must be the end state, not a
        // deadlock.
        match model.done() {
            Ok(true) => {
                result.schedules += 1;
                result.deepest = result.deepest.max(trail.len());
            }
            Ok(false) => {
                return Err(violation(
                    "deadlock: neither side can step but the run is not done".into(),
                    trail,
                ))
            }
            Err(m) => return Err(violation(m, trail)),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Shadow SPSC ring, memory-access granularity.
// ---------------------------------------------------------------------------

/// Shared memory of the shadow ring: exactly the fields of
/// [`crate::spsc`]'s `Shared`, with the value cell split into two halves so
/// a torn (half-completed) write is observable by the model.
#[derive(Debug, Clone)]
struct ShadowMem {
    seq: Vec<usize>,
    lo: Vec<Option<u64>>,
    hi: Vec<Option<u64>>,
    shared_head: usize,
    shared_tail: usize,
}

/// Program counter within one `push` (producer) or `pop` (consumer).
/// `Idle` doubles as the guard: the scheduler only fires the op when the
/// sequence check would pass — equivalent, under sequential consistency, to
/// scheduling the (spin-)retry when it finally succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    Idle,
    WroteLo,
    WroteHi,
    Published,
}

#[derive(Debug, Clone)]
struct SpscModel {
    cfg: SpscConfig,
    mem: ShadowMem,
    // Producer-private state.
    p_pc: Pc,
    tail: usize,
    // Consumer-private state.
    c_pc: Pc,
    head: usize,
    read_lo: Option<u64>,
    read_value: u64,
    popped: u64,
}

impl SpscModel {
    fn new(cfg: SpscConfig) -> Self {
        SpscModel {
            cfg,
            mem: ShadowMem {
                seq: (0..cfg.capacity).collect(),
                lo: vec![None; cfg.capacity],
                hi: vec![None; cfg.capacity],
                shared_head: 0,
                shared_tail: 0,
            },
            p_pc: Pc::Idle,
            tail: 0,
            c_pc: Pc::Idle,
            head: 0,
            read_lo: None,
            read_value: 0,
            popped: 0,
        }
    }

    fn occupancy_ok(&self) -> Result<(), String> {
        // Cursor sanity. The protocol hands progress around via `seq`, and
        // each side's counter trails the handoff: the producer publishes a
        // slot (seq store) one step before advancing `tail`, the consumer
        // frees a slot one step before advancing `head`. So the precise
        // invariants are on published/freed counts, not raw cursors — the
        // consumer never pops past what is published, and the producer
        // never runs more than `capacity` past what is freed. (Cell-level
        // exclusivity is asserted directly in the step functions.)
        let published = self.tail + (self.p_pc == Pc::Published) as usize;
        let freed = self.head + (self.c_pc == Pc::Published) as usize;
        if self.head > published {
            return Err(format!("consumer overtook the producer: head {}, published {published}", self.head));
        }
        if self.tail > freed + self.cfg.capacity {
            return Err(format!(
                "producer lapped the consumer: tail {}, freed {freed}, cap {}",
                self.tail, self.cfg.capacity
            ));
        }
        if self.mem.shared_tail > self.tail || self.mem.shared_head > self.head {
            return Err(format!(
                "shared cursor ahead of its owner: shared {}:{}, private {}:{}",
                self.mem.shared_head, self.mem.shared_tail, self.head, self.tail
            ));
        }
        Ok(())
    }

    fn step_producer(&mut self) -> Result<(), String> {
        let idx = self.tail % self.cfg.capacity;
        let value = self.tail as u64;
        if self.cfg.atomic_ops {
            // Whole push in one step (guard already held: seq == tail).
            self.mem.lo[idx] = Some(value);
            self.mem.hi[idx] = Some(value);
            self.mem.seq[idx] = self.tail + 1;
            self.tail += 1;
            self.mem.shared_tail = self.tail;
            return self.occupancy_ok();
        }
        match self.p_pc {
            Pc::Idle => {
                // Guard passed (seq == tail): the cell is ours. It must be
                // empty — a non-empty cell here means the consumer freed the
                // slot before draining it, or the producer overwrote.
                if self.mem.lo[idx].is_some() || self.mem.hi[idx].is_some() {
                    return Err(format!("producer granted slot {idx} while it still holds a value"));
                }
                self.mem.lo[idx] = Some(value);
                self.p_pc = Pc::WroteLo;
            }
            Pc::WroteLo => {
                self.mem.hi[idx] = Some(value);
                self.p_pc = Pc::WroteHi;
            }
            Pc::WroteHi => {
                self.mem.seq[idx] = self.tail + 1; // Release: publish to consumer
                self.p_pc = Pc::Published;
            }
            Pc::Published => {
                self.tail += 1;
                self.mem.shared_tail = self.tail;
                self.p_pc = Pc::Idle;
            }
        }
        self.occupancy_ok()
    }

    fn step_consumer(&mut self) -> Result<(), String> {
        let idx = self.head % self.cfg.capacity;
        if self.cfg.atomic_ops {
            let (lo, hi) = (self.mem.lo[idx], self.mem.hi[idx]);
            let value = self.check_read(idx, lo, hi)?;
            self.record_pop(value)?;
            self.mem.lo[idx] = None;
            self.mem.hi[idx] = None;
            self.mem.seq[idx] = self.head + self.cfg.capacity;
            self.head += 1;
            self.mem.shared_head = self.head;
            return self.occupancy_ok();
        }
        match self.c_pc {
            Pc::Idle => {
                // Guard passed (seq == head + 1): the cell is ours to read.
                self.read_lo = self.mem.lo[idx];
                self.c_pc = Pc::WroteLo;
            }
            Pc::WroteLo => {
                let hi = self.mem.hi[idx];
                self.read_value = self.check_read(idx, self.read_lo, hi)?;
                self.read_lo = None;
                self.c_pc = Pc::WroteHi;
            }
            Pc::WroteHi => {
                // Free the slot for the producer's next lap.
                self.mem.lo[idx] = None;
                self.mem.hi[idx] = None;
                self.mem.seq[idx] = self.head + self.cfg.capacity;
                self.c_pc = Pc::Published;
            }
            Pc::Published => {
                self.record_pop(self.read_value)?;
                self.head += 1;
                self.mem.shared_head = self.head;
                self.c_pc = Pc::Idle;
            }
        }
        self.occupancy_ok()
    }

    fn check_read(&self, idx: usize, lo: Option<u64>, hi: Option<u64>) -> Result<u64, String> {
        match (lo, hi) {
            (Some(a), Some(b)) if a == b => Ok(a),
            (Some(a), Some(b)) => Err(format!("torn read at slot {idx}: halves {a} != {b}")),
            _ => Err(format!("uninitialized read at slot {idx}: halves {lo:?}/{hi:?}")),
        }
    }

    fn record_pop(&mut self, value: u64) -> Result<(), String> {
        if value != self.popped {
            return Err(format!(
                "FIFO violation: popped value {value}, expected {} (lost or duplicated element)",
                self.popped
            ));
        }
        self.popped += 1;
        Ok(())
    }
}

impl Model for SpscModel {
    const ACTIONS: u8 = 2; // 0 = producer, 1 = consumer

    fn enabled(&self, action: u8) -> bool {
        match action {
            0 => {
                if self.tail >= self.cfg.items {
                    return false; // all items pushed
                }
                // Mid-operation steps always run; a new push only when the
                // sequence guard passes.
                self.p_pc != Pc::Idle || self.mem.seq[self.tail % self.cfg.capacity] == self.tail
            }
            1 => {
                if self.popped as usize >= self.cfg.items && self.c_pc == Pc::Idle {
                    return false; // all items popped
                }
                self.c_pc != Pc::Idle || self.mem.seq[self.head % self.cfg.capacity] == self.head + 1
            }
            _ => false,
        }
    }

    fn step(&mut self, action: u8) -> Result<(), String> {
        if action == 0 {
            self.step_producer()
        } else {
            self.step_consumer()
        }
    }

    fn done(&self) -> Result<bool, String> {
        let complete = self.tail == self.cfg.items
            && self.popped as usize == self.cfg.items
            && self.p_pc == Pc::Idle
            && self.c_pc == Pc::Idle;
        if !complete {
            return Ok(false);
        }
        // Final-state invariants: cursors agree, every slot drained.
        if self.mem.shared_head != self.cfg.items || self.mem.shared_tail != self.cfg.items {
            return Err(format!(
                "final cursors wrong: head {} tail {} items {}",
                self.mem.shared_head, self.mem.shared_tail, self.cfg.items
            ));
        }
        if self.mem.lo.iter().chain(self.mem.hi.iter()).any(|h| h.is_some()) {
            return Err("final state leaks a value: some slot half is still occupied".into());
        }
        Ok(true)
    }
}

/// Exhaustively explores every producer/consumer interleaving of the shadow
/// SPSC ring under `cfg`.
///
/// # Errors
///
/// Returns the first [`ModelViolation`] found, with its schedule.
pub fn explore_spsc(cfg: &SpscConfig) -> Result<Exploration, ModelViolation> {
    assert!(cfg.capacity >= 1 && cfg.items >= 1, "degenerate model bounds");
    explore(&SpscModel::new(*cfg))
}

// ---------------------------------------------------------------------------
// Shadow credit-based buffer pair, protocol granularity.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct PairModel {
    cfg: PairConfig,
    // The two rings, each ring op atomic (the SPSC model above justifies
    // treating them so).
    req_ring: std::collections::VecDeque<u64>,
    resp_ring: std::collections::VecDeque<u64>,
    // Client state.
    next_req: u64,
    issued: u64,
    completed: u64,
    // Server state: at most one request in hand between drain and respond.
    in_hand: Option<u64>,
    drained: u64,
    responded: u64,
}

impl PairModel {
    fn new(cfg: PairConfig) -> Self {
        PairModel {
            cfg,
            req_ring: std::collections::VecDeque::new(),
            resp_ring: std::collections::VecDeque::new(),
            next_req: 0,
            issued: 0,
            completed: 0,
            in_hand: None,
            drained: 0,
            responded: 0,
        }
    }

    /// Credit conservation: every issued-but-uncompleted request is in
    /// exactly one place — request ring, server's hand, or response ring —
    /// and the total never exceeds the window.
    fn conservation_ok(&self) -> Result<(), String> {
        let in_flight = self.issued - self.completed;
        let located =
            self.req_ring.len() as u64 + self.in_hand.is_some() as u64 + self.resp_ring.len() as u64;
        if in_flight != located {
            return Err(format!(
                "credit leak: in-flight {in_flight} but {located} located (req {} + hand {} + resp {})",
                self.req_ring.len(),
                self.in_hand.is_some() as u64,
                self.resp_ring.len()
            ));
        }
        if in_flight > self.cfg.capacity as u64 {
            return Err(format!("window overrun: {in_flight} in flight, capacity {}", self.cfg.capacity));
        }
        Ok(())
    }
}

/// Actions: 0 = client issues, 1 = client polls, 2 = server drains,
/// 3 = server responds.
impl Model for PairModel {
    const ACTIONS: u8 = 4;

    fn enabled(&self, action: u8) -> bool {
        match action {
            0 => {
                self.next_req < self.cfg.requests as u64
                    && self.issued - self.completed < self.cfg.capacity as u64
            }
            1 => !self.resp_ring.is_empty(),
            2 => self.in_hand.is_none() && !self.req_ring.is_empty(),
            3 => self.in_hand.is_some(),
            _ => false,
        }
    }

    fn step(&mut self, action: u8) -> Result<(), String> {
        match action {
            0 => {
                if self.req_ring.len() >= self.cfg.capacity {
                    return Err("request ring overflow despite credit window".into());
                }
                self.req_ring.push_back(self.next_req);
                self.next_req += 1;
                self.issued += 1;
            }
            1 => {
                let resp = self.resp_ring.pop_front().expect("enabled");
                if resp != self.completed {
                    return Err(format!("response order violation: got {resp}, expected {}", self.completed));
                }
                self.completed += 1;
            }
            2 => {
                let req = self.req_ring.pop_front().expect("enabled");
                if req != self.drained {
                    return Err(format!("request order violation: got {req}, expected {}", self.drained));
                }
                self.in_hand = Some(req);
                self.drained += 1;
            }
            3 => {
                // The documented protocol guarantee: while the client
                // respects its window, the response ring can never be full.
                if self.resp_ring.len() >= self.cfg.capacity {
                    return Err("respond would overflow the response ring despite credits".into());
                }
                self.resp_ring.push_back(self.in_hand.take().expect("enabled"));
                self.responded += 1;
            }
            _ => unreachable!("no such action"),
        }
        self.conservation_ok()
    }

    fn done(&self) -> Result<bool, String> {
        let n = self.cfg.requests as u64;
        if self.completed < n {
            return Ok(false);
        }
        if self.issued != n || self.drained != n || self.responded != n {
            return Err(format!(
                "final counters wrong: issued {} drained {} responded {} completed {} of {n}",
                self.issued, self.drained, self.responded, self.completed
            ));
        }
        Ok(true)
    }
}

/// Exhaustively explores every client/server protocol interleaving of the
/// credit-based buffer pair under `cfg`.
///
/// # Errors
///
/// Returns the first [`ModelViolation`] found, with its schedule.
pub fn explore_pair(cfg: &PairConfig) -> Result<Exploration, ModelViolation> {
    assert!(cfg.capacity >= 1 && cfg.requests >= 1, "degenerate model bounds");
    explore(&PairModel::new(*cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_memory_level_exhaustive() {
        // Every memory-access interleaving of 2 pushes and 2 pops through a
        // 2-slot ring: the acceptance bar is >= 10k distinct schedules, all
        // invariant-clean.
        let cfg = SpscConfig { capacity: 2, items: 3, atomic_ops: false };
        let r = explore_spsc(&cfg).expect("all interleavings hold the invariants");
        eprintln!("spsc memory-level: {r:?}");
        assert!(r.schedules >= 10_000, "only {} schedules explored", r.schedules);
        assert_eq!(r.deepest, 3 * 4 * 2, "a maximal schedule runs every step of every op");
    }

    #[test]
    fn spsc_single_slot_ring_is_rejected_for_a_reason() {
        // `channel()` asserts capacity >= 2 because at capacity 1 the slot
        // protocol is ambiguous: after a push, `seq == 1` simultaneously
        // means "full at index 0" and "empty at index 1", so the producer is
        // re-granted the slot while it still holds the unpopped value. The
        // model reproduces exactly that overwrite — documenting *why* the
        // constructor rejects capacity 1.
        let cfg = SpscConfig { capacity: 1, items: 2, atomic_ops: false };
        let err = explore_spsc(&cfg).expect_err("capacity-1 ambiguity must be caught");
        eprintln!("spsc single-slot: {err:?}");
        assert!(
            err.message.contains("still holds a value"),
            "expected the slot-reuse overwrite, got: {}",
            err.message
        );
    }

    #[test]
    fn spsc_protocol_level_covers_wraparound_laps() {
        // 9 items through 3 slots = 3 laps of slot reuse.
        let cfg = SpscConfig { capacity: 3, items: 9, atomic_ops: true };
        let r = explore_spsc(&cfg).expect("lap reuse holds the invariants");
        eprintln!("spsc protocol-level: {r:?}");
        assert!(r.schedules >= 100, "only {} schedules explored", r.schedules);
    }

    #[test]
    fn exploration_is_deterministic() {
        let cfg = SpscConfig { capacity: 2, items: 2, atomic_ops: false };
        let r = explore_spsc(&cfg).unwrap();
        eprintln!("spsc determinism config: {r:?}");
        assert_eq!(r, explore_spsc(&cfg).unwrap());
    }

    #[test]
    fn pair_credit_conservation_exhaustive() {
        let cfg = PairConfig { capacity: 2, requests: 6 };
        let r = explore_pair(&cfg).expect("credits conserved in every interleaving");
        eprintln!("pair: {r:?}");
        assert!(r.schedules >= 1_000, "only {} schedules explored", r.schedules);
        // Every request takes exactly 4 actions (issue, drain, respond,
        // poll), whatever the interleaving.
        assert_eq!(r.deepest, 4 * 6);
    }

    #[test]
    fn broken_model_is_caught() {
        // Sanity-check the checker itself: a ring whose consumer guard is
        // wrong (reads one slot early) must produce a violation, proving
        // the invariants have teeth.
        #[derive(Clone)]
        struct Broken(SpscModel);
        impl Model for Broken {
            const ACTIONS: u8 = 2;
            fn enabled(&self, action: u8) -> bool {
                if action == 1 && self.0.c_pc == Pc::Idle {
                    // Bug: consider the slot readable as soon as the
                    // producer *starts* writing (seq == head), one step
                    // before publication.
                    let idx = self.0.head % self.0.cfg.capacity;
                    return (self.0.popped as usize) < self.0.cfg.items
                        && (self.0.mem.seq[idx] == self.0.head + 1
                            || (self.0.mem.seq[idx] == self.0.head && self.0.p_pc != Pc::Idle));
                }
                self.0.enabled(action)
            }
            fn step(&mut self, action: u8) -> Result<(), String> {
                self.0.step(action)
            }
            fn done(&self) -> Result<bool, String> {
                self.0.done()
            }
        }
        let model = Broken(SpscModel::new(SpscConfig { capacity: 2, items: 2, atomic_ops: false }));
        // The first interleaving to trip an invariant depends on DFS order;
        // any violation (uninitialized/torn read, clobbered slot, bad final
        // state) proves the checker has teeth.
        let err = explore(&model).expect_err("premature read must be caught");
        assert!(!err.schedule.is_empty(), "violation must carry its schedule");
    }
}
