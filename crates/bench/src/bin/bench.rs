//! The continuous-benchmark driver behind `cargo xtask bench`.
//!
//! ```text
//! bench [--quick] [--sweep NAME]... [--out DIR] [--compare PATH] [--list]
//! ```
//!
//! Runs the declarative sweeps in `rambda_bench::harness`, writes one
//! byte-deterministic `BENCH_<sweep>.json` per sweep into `--out`
//! (default `bench/out`), and prints each sweep's ASCII table.
//!
//! With `--compare PATH` (a directory of baseline `BENCH_<sweep>.json`
//! files — normally `bench/baselines` — or a single file), every fresh
//! sweep is diffed against its baseline; any throughput drop or p99 rise
//! beyond the baseline's tolerance prints a readable diff line and the
//! process exits non-zero, which CI gates on.
//!
//! Simulator self-profiling (wall-clock requests/sec and simulated-time
//! speedup) is *non-gating* metadata: wall time is inherently
//! nondeterministic, so it is printed and written to a separate
//! `BENCH_PROFILE.json` sidecar, never into the deterministic artifacts
//! and never into the comparison (DESIGN.md §10).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use rambda::Execution;
use rambda_bench::harness::{compare, is_gating, run_sweep, sweep_names, SweepResult};
use rambda_metrics::Json;

const USAGE: &str = "\
Usage: bench [--quick] [--sweep NAME]... [--out DIR] [--compare PATH]
             [--profile] [--scopes] [--workers N] [--list]

  --quick          CI-sized runs (the committed baselines are quick-mode)
  --sweep NAME     run only the named sweep (repeatable; default: all)
  --out DIR        artifact directory (default: bench/out)
  --compare PATH   baseline dir or file to gate against; regressions exit 1
  --profile        run each point under the deterministic profiler; sweep
                   JSON and tables gain parallelism-ratio / event-core rows
  --scopes         run each point under the scoped-metrics registry; sweep
                   JSON and tables gain a hottest-scope request-share column
  --workers N      run every point under the conservative parallel executor
                   with N partitions (N >= 2); artifacts are byte-identical
                   to serial runs, so --compare doubles as a differential gate
  --list           print the defined sweep names and exit
";

struct Args {
    quick: bool,
    sweeps: Vec<String>,
    out: PathBuf,
    compare: Option<PathBuf>,
    profile: bool,
    scopes: bool,
    workers: usize,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        quick: false,
        sweeps: Vec::new(),
        out: PathBuf::from("bench/out"),
        compare: None,
        profile: false,
        scopes: false,
        workers: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--profile" => args.profile = true,
            "--scopes" => args.scopes = true,
            "--sweep" => {
                let name = it.next().ok_or("--sweep requires a name")?;
                if !sweep_names().contains(&name.as_str()) {
                    return Err(format!(
                        "unknown sweep `{name}` — valid sweeps: {}",
                        sweep_names().join(", ")
                    ));
                }
                args.sweeps.push(name);
            }
            "--workers" => {
                let n = it.next().ok_or("--workers requires a count")?;
                args.workers = n.parse().map_err(|_| format!("invalid --workers count `{n}`"))?;
            }
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out requires a directory")?),
            "--compare" => args.compare = Some(PathBuf::from(it.next().ok_or("--compare requires a path")?)),
            "--list" => {
                for name in sweep_names() {
                    println!("{name}");
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.sweeps.is_empty() {
        args.sweeps = sweep_names().iter().map(|s| s.to_string()).collect();
    }
    Ok(Some(args))
}

/// Loads the baseline for `sweep` from a directory of `BENCH_<sweep>.json`
/// files or a single file.
fn load_baseline(path: &Path, sweep: &str) -> Result<SweepResult, String> {
    let file = if path.is_dir() { path.join(format!("BENCH_{sweep}.json")) } else { path.to_path_buf() };
    let text = std::fs::read_to_string(&file)
        .map_err(|e| format!("cannot read baseline {}: {e}", file.display()))?;
    let baseline = SweepResult::from_json_str(&text).map_err(|e| format!("{}: {e}", file.display()))?;
    if baseline.sweep != sweep {
        return Err(format!("{} holds sweep `{}`, expected `{sweep}`", file.display(), baseline.sweep));
    }
    Ok(baseline)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("error: cannot create {}: {e}", args.out.display());
        return ExitCode::from(2);
    }

    let execution =
        if args.workers >= 2 { Execution::Conservative { workers: args.workers } } else { Execution::Serial };
    let mut regressions = Vec::new();
    let mut profile = Json::obj();
    for sweep in &args.sweeps {
        let started = Instant::now();
        let result = match run_sweep(sweep, args.quick, args.profile, args.scopes, execution) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: sweep {sweep}: {e}");
                return ExitCode::from(2);
            }
        };
        let wall = started.elapsed();

        let file = args.out.join(format!("BENCH_{sweep}.json"));
        if let Err(e) = std::fs::write(&file, result.to_json_string()) {
            eprintln!("error: cannot write {}: {e}", file.display());
            return ExitCode::from(2);
        }
        print!("{}", result.render_table());

        // Non-gating self-profile: how fast the simulator itself ran.
        let completed: u64 = result.points.iter().map(|p| p.completed).sum();
        let sim_ps: u64 = result.points.iter().map(|p| p.elapsed_ps).sum();
        let secs = wall.as_secs_f64().max(1e-9);
        let mut entry = Json::obj();
        entry.push("wall_ms", Json::F64(wall.as_secs_f64() * 1e3));
        entry.push("requests_per_sec", Json::F64(completed as f64 / secs));
        entry.push("sim_time_speedup", Json::F64(sim_ps as f64 / 1e12 / secs));
        profile.push(sweep, entry);
        println!(
            "{sweep}: {} points in {:.1} ms ({:.0} simulated requests/sec, non-gating)\n",
            result.points.len(),
            wall.as_secs_f64() * 1e3,
            completed as f64 / secs
        );

        if let Some(base_path) = &args.compare {
            if !is_gating(sweep) {
                println!("{sweep}: non-gating, comparison skipped");
                continue;
            }
            match load_baseline(base_path, sweep) {
                Ok(baseline) => {
                    let diffs = compare(&result, &baseline);
                    if diffs.is_empty() {
                        println!("{sweep}: no regression vs {}", base_path.display());
                    } else {
                        for d in &diffs {
                            eprintln!("REGRESSION {d}");
                        }
                        regressions.extend(diffs);
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    regressions.push(e);
                }
            }
        }
    }

    let profile_file = args.out.join("BENCH_PROFILE.json");
    if let Err(e) = std::fs::write(&profile_file, profile.render()) {
        eprintln!("error: cannot write {}: {e}", profile_file.display());
        return ExitCode::from(2);
    }

    if regressions.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("\n{} regression(s) — see diff lines above", regressions.len());
        ExitCode::FAILURE
    }
}
