//! The deterministic profile artifact: one JSON document per profiled run.
//!
//! [`profile_json`] folds the two deterministic profiler outputs into one
//! canonical document the golden/determinism tests can byte-compare:
//!
//! * the report's `event_core` section (scheduler telemetry, already
//!   validated by `RunReport::validate`),
//! * the tracer's [`crate::Tracer::critical_path`] analysis (per-track
//!   work, parallelism ratio),
//! * the per-machine-pair lookahead bounds the run's network published as
//!   `*.lookahead.<from>.<to>.min_ps` resource counters — the minimum
//!   cross-partition latency a conservative parallel DES could exploit
//!   (ROADMAP item 2).
//!
//! The wall-clock side ([`crate::HostProf`]) is deliberately *not* here:
//! its folded-stack export is a separate, git-ignored artifact.

use rambda_metrics::{Json, RunReport};

use crate::tracer::Tracer;

/// Renders the deterministic profile document for one run. The tracer may
/// be disabled (no `critical_path` section then); the report may lack an
/// `event_core` section when profiling was off.
pub fn profile_json(report: &RunReport, tracer: &Tracer) -> String {
    let mut out = Json::obj();
    out.push("name", Json::Str(report.name.clone()));
    out.push("seed", Json::U64(report.seed));
    out.push("completed", Json::U64(report.completed));
    out.push("throughput_ops", Json::F64(report.throughput_ops));
    if let Some(ec) = &report.event_core {
        out.push("event_core", ec.to_json());
    }
    if let Some(cp) = tracer.critical_path() {
        out.push("critical_path", cp.to_json());
    }
    out.push("lookahead", lookahead_section(report));
    out.render()
}

/// Collects the `*.lookahead.<from>.<to>.min_ps` resource counters into a
/// `"<from>-><to>": min_ps` object (empty when the run had no network or
/// profiling was off). Counters arrive name-sorted from the `MetricSet`,
/// so the object is deterministic.
fn lookahead_section(report: &RunReport) -> Json {
    let mut pairs = Json::obj();
    for (name, value) in report.resources.counters() {
        let Some(rest) = name.split_once(".lookahead.").map(|(_, r)| r) else { continue };
        let Some(pair) = rest.strip_suffix(".min_ps") else { continue };
        let Some((from, to)) = pair.split_once('.') else { continue };
        pairs.push(&format!("{from}->{to}"), Json::U64(value));
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambda_des::{SimTime, Span};
    use rambda_metrics::{HistSummary, MetricSet, StageRecorder};

    #[test]
    fn profile_document_is_deterministic_and_scrapes_lookahead() {
        let rec0 = StageRecorder::active();
        let mut resources = MetricSet::new();
        resources.set("net.lookahead.0.1.min_ps", 850_000);
        resources.set("net.lookahead.1.0.min_ps", 850_000);
        resources.set("net.c2s.bytes", 4096); // not a lookahead row
        let report = RunReport::new(
            "toy",
            7,
            1,
            0.0,
            Span::from_us(1),
            HistSummary::of(rec0.total()),
            &rec0,
            resources,
        );

        let mut rec = StageRecorder::active();
        let mut tracer = Tracer::flight_recorder();
        let mut obs = tracer.observe(&mut rec, SimTime::from_ns(0));
        obs.leg("fabric_request", SimTime::from_ns(30));
        obs.finish(SimTime::from_ns(30));

        let a = profile_json(&report, &tracer);
        let b = profile_json(&report, &tracer);
        assert_eq!(a, b);
        assert!(a.contains("\"0->1\": 850000"), "{a}");
        assert!(!a.contains("c2s"), "non-lookahead counters stay out: {a}");
        assert!(a.contains("\"critical_path\""), "{a}");

        // Disabled tracer: document still renders, minus the section.
        let plain = profile_json(&report, &Tracer::disabled());
        assert!(!plain.contains("critical_path"));
    }
}
