//! Network and PCIe link models.
//!
//! Two transports carry every byte in the paper's evaluation:
//!
//! * the 25 GbE RoCEv2 fabric between clients and servers ([`Network`]),
//! * the PCIe link between a device (RNIC / Smart NIC) and the host
//!   ([`PcieLink`]), including the MMIO doorbell path and the TPH bit whose
//!   routing consequences `rambda-mem` models.
//!
//! Both are FIFO bandwidth resources (queueing included) plus propagation
//! latency, built on [`rambda_des::Link`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
mod net;
mod pcie;

pub use faults::{DegradeWindow, FaultConfig, FaultEvent, FaultKind, FaultPlan, FaultStats, FlapWindow};
pub use net::{NetConfig, Network, NodeId, TxOutcome};
pub use pcie::{PcieConfig, PcieLink};
