//! Typed trace events and the resource-track classification.

/// The hardware resource lane a span is attributed to.
///
/// Tracks give the Perfetto view one row per resource class and let the
/// tail-attribution report name "the dominating resource" rather than just
/// a stage string. Classification is by stage name: the stage vocabulary is
/// fixed by the runners (see `StageRecorder` call sites), so an explicit
/// match keeps the mapping auditable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// RNIC pipeline work: WQE assembly, doorbells, RX processing.
    Rnic,
    /// Network fabric: wire time, chain hops, RDMA round trips.
    Fabric,
    /// Coherence-interconnect notification (cpoll discovery).
    Coherence,
    /// The accelerator: scheduler dispatch, APU compute, commit logic.
    Accel,
    /// Smart-NIC ARM cores.
    SmartNic,
    /// Memory-system work: ring reads/writes, pointer chases, persists.
    Mem,
    /// Host CPU cores: request serving, pre-processing, CQE polling.
    Cpu,
    /// Anything the classifier does not recognize.
    Other,
}

impl Track {
    /// Every track, in display order.
    pub const ALL: [Track; 8] = [
        Track::Rnic,
        Track::Fabric,
        Track::Coherence,
        Track::Accel,
        Track::SmartNic,
        Track::Mem,
        Track::Cpu,
        Track::Other,
    ];

    /// Classifies a stage name from the runners' fixed vocabulary.
    pub fn of_stage(stage: &str) -> Track {
        match stage {
            "rnic_pipeline" | "doorbell" | "sq_wqe" => Track::Rnic,
            "coherence" => Track::Coherence,
            "dispatch" | "commit" | "gather" => Track::Accel,
            "mem_chase" | "nvm_persist" | "response_write" => Track::Mem,
            "core_queue" | "gather_compute" | "cqe_poll" => Track::Cpu,
            // `shed` marks a request abandoned after the RNIC exhausted its
            // retransmission budget — a fabric outcome, not a compute stage.
            "read_rtts" | "shed" => Track::Fabric,
            s if s.starts_with("fabric") || s.starts_with("chain") => Track::Fabric,
            s if s.starts_with("apu") => Track::Accel,
            s if s.starts_with("arm") => Track::SmartNic,
            s if s.starts_with("ring") => Track::Mem,
            s if s.starts_with("cpu") => Track::Cpu,
            _ => Track::Other,
        }
    }

    /// A stable display name (Perfetto thread name).
    pub fn name(self) -> &'static str {
        match self {
            Track::Rnic => "rnic",
            Track::Fabric => "fabric",
            Track::Coherence => "coherence",
            Track::Accel => "accel",
            Track::SmartNic => "smartnic",
            Track::Mem => "mem",
            Track::Cpu => "cpu",
            Track::Other => "other",
        }
    }

    /// A stable small integer id (Perfetto `tid`, binary-export tag).
    pub fn id(self) -> u8 {
        match self {
            Track::Rnic => 1,
            Track::Fabric => 2,
            Track::Coherence => 3,
            Track::Accel => 4,
            Track::SmartNic => 5,
            Track::Mem => 6,
            Track::Cpu => 7,
            Track::Other => 8,
        }
    }
}

/// One recorded event. Timestamps are raw simulation picoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// One critical-path leg of one request, causally parented to the
    /// request span it belongs to.
    Span {
        /// Unique event id (allocation order).
        id: u64,
        /// Id of the enclosing request span ([`TraceEvent::Request`]).
        parent: u64,
        /// Request sequence number.
        req: u64,
        /// Resource track the leg runs on.
        track: Track,
        /// Stage name (the `StageRecorder` leg name).
        stage: &'static str,
        /// Leg start, picoseconds.
        start_ps: u64,
        /// Leg end, picoseconds.
        end_ps: u64,
    },
    /// One request's issue → completion interval; its `id` is the parent
    /// of all the request's leg spans.
    Request {
        /// Unique event id, allocated at issue (so legs can reference it).
        id: u64,
        /// Request sequence number.
        req: u64,
        /// Issue time, picoseconds.
        start_ps: u64,
        /// Completion time, picoseconds.
        end_ps: u64,
    },
    /// One periodic sample of a cumulative resource counter.
    Sample {
        /// Counter name, e.g. `net.c2s.bytes` or `accel.slots.busy_ps`.
        name: String,
        /// Grid instant the sample was taken at, picoseconds.
        at_ps: u64,
        /// The counter's cumulative value at that instant.
        value: u64,
    },
    /// One injected fabric fault (from the run's `FaultPlan`), recorded as
    /// an instant on the fabric track so lossy stretches line up visually
    /// with the latency spans they inflate.
    Fault {
        /// What happened to the frame: `"dropped"`, `"corrupted"` or
        /// `"flapped"` (the `FaultKind` name).
        kind: &'static str,
        /// When the fault took effect (end of egress serialization at the
        /// sender), picoseconds.
        at_ps: u64,
        /// Sending node id.
        from: u16,
        /// Receiving node id.
        to: u16,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_runner_stage_classifies_off_other() {
        // The full stage vocabulary across the nine runners.
        let stages = [
            "cpu_serve",
            "coherence",
            "dispatch",
            "ring_read",
            "ring_write",
            "mem_chase",
            "apu_compute",
            "apu_dispatch",
            "nvm_persist",
            "response_write",
            "fabric_request",
            "fabric_response",
            "rnic_pipeline",
            "sq_wqe",
            "doorbell",
            "arm_dispatch",
            "arm_mem_access",
            "read_rtts",
            "chain_writes",
            "chain_round",
            "commit",
            "core_queue",
            "gather",
            "gather_compute",
            "cqe_poll",
            "cpu_preprocess",
            "shed",
        ];
        for s in stages {
            assert_ne!(Track::of_stage(s), Track::Other, "stage {s} is unclassified");
        }
        assert_eq!(Track::of_stage("mystery_stage"), Track::Other);
    }

    #[test]
    fn track_ids_and_names_are_distinct() {
        let mut ids: Vec<u8> = Track::ALL.iter().map(|t| t.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Track::ALL.len());
        let mut names: Vec<&str> = Track::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Track::ALL.len());
    }
}
