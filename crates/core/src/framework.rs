//! The Rambda user-space framework (Sec. III-E).
//!
//! An application registers itself with initialization information —
//! connections to establish, the memory region of its data, the target
//! accelerator — and the framework allocates the request/response rings,
//! registers them with the RNIC (with the adaptive TPH policy), makes them
//! visible to the accelerator, and sets up the cpoll region: pinned rings
//! when they fit the local cache (Fig. 3(b)), a pointer buffer otherwise
//! (Fig. 3(c)).

use rambda_accel::DataLocation;
use rambda_coherence::{CpollChecker, CpollError, RegionId};
use rambda_mem::MemKind;
use rambda_ring::{BufferPair, ClientEnd, PointerBuffer, ServerEnd, TailTracker};
use rambda_rnic::{MrInfo, MrKey, QpId, RnicEndpoint};

/// How the cpoll region was laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpollLayout {
    /// The request rings themselves are pinned in the local cache
    /// (small scale / small requests, Fig. 3(b)).
    PinnedRings,
    /// A 4 B-per-ring pointer buffer is pinned instead (large scale / large
    /// requests, Fig. 3(c)).
    PointerBuffer,
}

/// What an application hands to [`Framework::register_app`].
#[derive(Debug, Clone)]
pub struct AppRegistration {
    /// Application name (diagnostics only).
    pub name: String,
    /// Client connections to establish.
    pub connections: usize,
    /// Entries per request/response ring (1024 in the prototype).
    pub ring_entries: usize,
    /// Bytes per ring entry (request size class).
    pub entry_bytes: u64,
    /// Where the application data lives.
    pub data_location: DataLocation,
}

impl AppRegistration {
    /// A conventional registration: 1024-entry rings of 64 B entries.
    pub fn new(name: &str, connections: usize) -> Self {
        AppRegistration {
            name: name.to_string(),
            connections,
            ring_entries: 1024,
            entry_bytes: 64,
            data_location: DataLocation::HostDram,
        }
    }

    /// Sets the ring geometry.
    pub fn with_rings(mut self, entries: usize, entry_bytes: u64) -> Self {
        self.ring_entries = entries;
        self.entry_bytes = entry_bytes;
        self
    }

    /// Sets the data location.
    pub fn with_location(mut self, location: DataLocation) -> Self {
        self.data_location = location;
        self
    }

    /// Bytes of one request ring.
    pub fn ring_bytes(&self) -> u64 {
        self.ring_entries as u64 * self.entry_bytes
    }
}

/// One established connection: the typed ring ends plus the RDMA-level
/// identifiers the data path uses.
#[derive(Debug)]
pub struct Connection<Req, Resp> {
    /// The connection's index within the app.
    pub index: usize,
    /// The client side (lives on the client machine).
    pub client: ClientEnd<Req, Resp>,
    /// The server side (drained by the accelerator/CPU).
    pub server: ServerEnd<Req, Resp>,
    /// The RDMA queue pair backing the connection.
    pub qp: QpId,
}

/// A registered application: rings, regions, cpoll setup.
#[derive(Debug)]
pub struct RegisteredApp<Req, Resp> {
    registration: AppRegistration,
    /// Established connections (one buffer pair + QP each, never shared —
    /// Sec. III-A).
    pub connections: Vec<Connection<Req, Resp>>,
    /// The RNIC region receiving request writes.
    pub request_mr: MrKey,
    /// The cpoll layout chosen.
    pub layout: CpollLayout,
    /// The registered cpoll region.
    pub region: RegionId,
    /// Pointer buffer (present only in [`CpollLayout::PointerBuffer`]).
    pub pointer_buffer: Option<PointerBuffer>,
    /// Per-ring tail trackers for coalesced-signal recovery.
    pub trackers: Vec<TailTracker>,
}

impl<Req, Resp> RegisteredApp<Req, Resp> {
    /// The registration this app was created from.
    pub fn registration(&self) -> &AppRegistration {
        &self.registration
    }
}

/// Registration errors.
#[derive(Debug, PartialEq, Eq)]
pub enum RegisterError {
    /// Zero connections requested.
    NoConnections,
    /// Neither pinned rings nor a pointer buffer fit the local cache.
    Cpoll(CpollError),
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::NoConnections => write!(f, "an app needs at least one connection"),
            RegisterError::Cpoll(e) => write!(f, "cpoll region setup failed: {e}"),
        }
    }
}

impl std::error::Error for RegisterError {}

/// The framework: owns nothing but knows how to wire an app into a server's
/// RNIC and accelerator.
#[derive(Debug, Default)]
pub struct Framework {
    next_base: u64,
}

/// Virtual base address where the framework maps cpoll regions.
const CPOLL_BASE: u64 = 0x4000_0000;

impl Framework {
    /// Creates a framework instance.
    pub fn new() -> Self {
        Framework { next_base: CPOLL_BASE }
    }

    fn allocate(&mut self, bytes: u64) -> u64 {
        let base = self.next_base;
        // Keep regions line-aligned and non-adjacent.
        self.next_base += bytes.div_ceil(64) * 64 + 64;
        base
    }

    /// Registers an application: allocates rings, registers the request
    /// region with the RNIC (adaptive TPH per the data location), and sets
    /// up the cpoll region — pinned rings if they fit, otherwise a pointer
    /// buffer.
    ///
    /// # Errors
    ///
    /// [`RegisterError::NoConnections`] for an empty registration;
    /// [`RegisterError::Cpoll`] if even the pointer buffer cannot be pinned.
    pub fn register_app<Req, Resp>(
        &mut self,
        registration: AppRegistration,
        rnic: &mut RnicEndpoint,
        cpoll: &mut CpollChecker,
    ) -> Result<RegisteredApp<Req, Resp>, RegisterError> {
        if registration.connections == 0 {
            return Err(RegisterError::NoConnections);
        }

        // Rings + QPs, one pair per connection (never shared, Sec. III-A).
        let connections = (0..registration.connections)
            .map(|index| {
                let (client, server) =
                    BufferPair::with_capacity::<Req, Resp>(registration.ring_entries.next_power_of_two());
                Connection { index, client, server, qp: rnic.create_qp() }
            })
            .collect();

        // RNIC memory region with the adaptive TPH policy.
        let dest = match registration.data_location {
            DataLocation::LocalDdr => MemKind::AccelDdr,
            DataLocation::LocalHbm => MemKind::AccelHbm,
            DataLocation::HostNvm => MemKind::Nvm,
            DataLocation::HostDram => MemKind::Dram,
        };
        let request_mr = rnic.register_region(MrInfo::adaptive(dest));

        // cpoll region: try pinning the rings themselves first.
        let rings_bytes = registration.connections as u64 * registration.ring_bytes();
        let base = self.allocate(rings_bytes);
        let (layout, region, pointer_buffer) =
            match cpoll.register(base, rings_bytes, registration.ring_bytes()) {
                Ok(region) => (CpollLayout::PinnedRings, region, None),
                Err(CpollError::CacheOverflow { .. }) => {
                    // Fall back to the pointer buffer: one padded line per
                    // ring.
                    let ptr_bytes = registration.connections as u64 * 64;
                    let ptr_base = self.allocate(ptr_bytes);
                    let region = cpoll.register(ptr_base, ptr_bytes, 64).map_err(RegisterError::Cpoll)?;
                    (CpollLayout::PointerBuffer, region, Some(PointerBuffer::new(registration.connections)))
                }
                Err(e) => return Err(RegisterError::Cpoll(e)),
            };

        Ok(RegisteredApp {
            trackers: vec![TailTracker::new(); registration.connections],
            registration,
            connections,
            request_mr,
            layout,
            region,
            pointer_buffer,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Testbed;
    use rambda_fabric::NodeId;

    fn server_parts() -> (RnicEndpoint, CpollChecker) {
        let tb = Testbed::default();
        (
            RnicEndpoint::new(NodeId(1), tb.rnic.clone(), tb.pcie.clone()),
            CpollChecker::new(tb.cc.local_cache_bytes),
        )
    }

    #[test]
    fn small_apps_pin_their_rings() {
        let (mut rnic, mut cpoll) = server_parts();
        let mut fw = Framework::new();
        // 16 connections x 1KB rings = 16KB: fits the 64KB cache.
        let reg = AppRegistration::new("kvs", 16).with_rings(16, 64);
        let app = fw.register_app::<u64, u64>(reg, &mut rnic, &mut cpoll).unwrap();
        assert_eq!(app.layout, CpollLayout::PinnedRings);
        assert!(app.pointer_buffer.is_none());
        assert_eq!(app.connections.len(), 16);
        assert_eq!(app.trackers.len(), 16);
    }

    #[test]
    fn large_apps_fall_back_to_the_pointer_buffer() {
        let (mut rnic, mut cpoll) = server_parts();
        let mut fw = Framework::new();
        // 1024-entry rings of 1KB entries: 1MB per ring — cannot pin.
        let reg = AppRegistration::new("tx", 64).with_rings(1024, 1024);
        let app = fw.register_app::<u64, u64>(reg, &mut rnic, &mut cpoll).unwrap();
        assert_eq!(app.layout, CpollLayout::PointerBuffer);
        let pb = app.pointer_buffer.as_ref().unwrap();
        assert_eq!(pb.len(), 64);
        assert_eq!(pb.region_bytes(), 256);
    }

    #[test]
    fn connections_get_distinct_qps() {
        let (mut rnic, mut cpoll) = server_parts();
        let mut fw = Framework::new();
        let app = fw
            .register_app::<u64, u64>(AppRegistration::new("a", 4).with_rings(16, 64), &mut rnic, &mut cpoll)
            .unwrap();
        let mut qps: Vec<_> = app.connections.iter().map(|c| c.qp).collect();
        qps.dedup();
        assert_eq!(qps.len(), 4);
    }

    #[test]
    fn two_apps_do_not_overlap_regions() {
        let (mut rnic, mut cpoll) = server_parts();
        let mut fw = Framework::new();
        let a = fw
            .register_app::<u64, u64>(AppRegistration::new("a", 8).with_rings(16, 64), &mut rnic, &mut cpoll)
            .unwrap();
        let b = fw
            .register_app::<u64, u64>(AppRegistration::new("b", 8).with_rings(16, 64), &mut rnic, &mut cpoll)
            .unwrap();
        assert_ne!(a.region, b.region);
        assert_ne!(a.request_mr, b.request_mr);
    }

    #[test]
    fn registered_rings_work_end_to_end() {
        let (mut rnic, mut cpoll) = server_parts();
        let mut fw = Framework::new();
        let mut app = fw
            .register_app::<u32, u32>(
                AppRegistration::new("echo", 2).with_rings(16, 64),
                &mut rnic,
                &mut cpoll,
            )
            .unwrap();
        let conn = &mut app.connections[1];
        conn.client.issue(41).unwrap();
        let req = conn.server.next_request().unwrap();
        conn.server.respond(req + 1).unwrap();
        assert_eq!(conn.client.poll(), Some(42));
    }

    #[test]
    fn zero_connections_rejected() {
        let (mut rnic, mut cpoll) = server_parts();
        let mut fw = Framework::new();
        let err =
            fw.register_app::<u64, u64>(AppRegistration::new("x", 0), &mut rnic, &mut cpoll).unwrap_err();
        assert_eq!(err, RegisterError::NoConnections);
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn nvm_apps_register_nvm_regions_without_tph() {
        let (mut rnic, mut cpoll) = server_parts();
        let mut fw = Framework::new();
        let reg = AppRegistration::new("tx", 2).with_rings(16, 64).with_location(DataLocation::HostNvm);
        let app = fw.register_app::<u64, u64>(reg, &mut rnic, &mut cpoll).unwrap();
        let info = rnic.region(app.request_mr);
        assert_eq!(info.dest, MemKind::Nvm);
        assert!(!info.tph, "NVM regions must bypass DDIO (Fig. 6)");
    }
}
