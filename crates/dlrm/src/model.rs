//! The functional DLRM model: embedding table, gather-reduce, MLP.

use serde::{Deserialize, Serialize};

/// Aggregation operator for the embedding reduction (the APU's ALU supports
/// "various aggregation operators (e.g., max/min/inner product)", Sec. IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Element-wise sum (the DLRM default).
    Sum,
    /// Element-wise max.
    Max,
    /// Element-wise min.
    Min,
    /// Element-wise mean.
    Mean,
}

/// A dense embedding table of `rows × dim` f32 values.
///
/// Entries are deterministic pseudo-random values derived from the row id,
/// standing in for trained weights.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    dim: usize,
    rows: Vec<Vec<f32>>,
}

fn synth(row: u64, col: usize) -> f32 {
    // Deterministic small values in (-1, 1).
    let mut x = row.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (col as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 29;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
}

impl EmbeddingTable {
    /// Builds a table with synthetic weights.
    pub fn synthetic(rows: usize, dim: usize) -> Self {
        let rows = (0..rows as u64).map(|r| (0..dim).map(|c| synth(r, c)).collect()).collect();
        EmbeddingTable { dim, rows }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// One row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: u32) -> &[f32] {
        &self.rows[row as usize]
    }

    /// Bytes per row (`dim × 4`).
    pub fn row_bytes(&self) -> u64 {
        self.dim as u64 * 4
    }

    /// Gathers `features` and reduces them with `op`.
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty or contains out-of-range rows.
    pub fn reduce(&self, features: &[u32], op: ReduceOp) -> Vec<f32> {
        assert!(!features.is_empty(), "cannot reduce an empty feature set");
        let mut acc = self.row(features[0]).to_vec();
        for &f in &features[1..] {
            let row = self.row(f);
            for (a, &v) in acc.iter_mut().zip(row) {
                *a = match op {
                    ReduceOp::Sum | ReduceOp::Mean => *a + v,
                    ReduceOp::Max => a.max(v),
                    ReduceOp::Min => a.min(v),
                };
            }
        }
        if op == ReduceOp::Mean {
            let n = features.len() as f32;
            acc.iter_mut().for_each(|a| *a /= n);
        }
        acc
    }
}

/// A small fully-connected network with ReLU activations (the "relatively
/// lightweight" FC layers of Sec. VI-D).
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Per layer: (weights `[out][in]`, bias `[out]`).
    layers: Vec<(Vec<Vec<f32>>, Vec<f32>)>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths (`widths[0]` = input).
    ///
    /// # Panics
    ///
    /// Panics with fewer than two widths.
    pub fn synthetic(widths: &[usize]) -> Self {
        assert!(widths.len() >= 2, "an MLP needs input and output widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(l, w)| {
                let (input, output) = (w[0], w[1]);
                let weights = (0..output)
                    .map(|o| (0..input).map(|i| synth((l * 131 + o) as u64, i) * 0.1).collect())
                    .collect();
                let bias = (0..output).map(|o| synth(l as u64, o) * 0.01).collect();
                (weights, bias)
            })
            .collect();
        Mlp { layers }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass with ReLU between layers (none after the last).
    ///
    /// # Panics
    ///
    /// Panics if `input` does not match the first layer's width.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut x = input.to_vec();
        for (l, (weights, bias)) in self.layers.iter().enumerate() {
            assert_eq!(x.len(), weights[0].len(), "layer {l} width mismatch");
            let mut y: Vec<f32> = weights
                .iter()
                .zip(bias)
                .map(|(row, b)| row.iter().zip(&x).map(|(w, v)| w * v).sum::<f32>() + b)
                .collect();
            if l + 1 < self.layers.len() {
                y.iter_mut().for_each(|v| *v = v.max(0.0));
            }
            x = y;
        }
        x
    }

    /// Approximate multiply-accumulate count of one forward pass.
    pub fn flops(&self) -> u64 {
        self.layers.iter().map(|(w, _)| (w.len() * w[0].len()) as u64).sum()
    }
}

/// The full model: embedding + top MLP producing a click-through score.
#[derive(Debug, Clone)]
pub struct DlrmModel {
    /// The (sparse-feature) embedding table.
    pub embedding: EmbeddingTable,
    /// The top MLP.
    pub mlp: Mlp,
}

impl DlrmModel {
    /// A synthetic model: `rows × dim` embeddings, `dim→64→16→1` MLP.
    pub fn synthetic(rows: usize, dim: usize) -> Self {
        DlrmModel { embedding: EmbeddingTable::synthetic(rows, dim), mlp: Mlp::synthetic(&[dim, 64, 16, 1]) }
    }

    /// End-to-end inference: reduce the features, run the MLP, return the
    /// score.
    ///
    /// # Panics
    ///
    /// Panics on an empty feature set.
    pub fn infer(&self, features: &[u32]) -> f32 {
        let reduced = self.embedding.reduce(features, ReduceOp::Sum);
        self.mlp.forward(&reduced)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sum_matches_manual() {
        let t = EmbeddingTable::synthetic(10, 4);
        let r = t.reduce(&[1, 3], ReduceOp::Sum);
        for (c, &got) in r.iter().enumerate() {
            let want = t.row(1)[c] + t.row(3)[c];
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn reduce_ops_behave() {
        let t = EmbeddingTable::synthetic(10, 8);
        let max = t.reduce(&[0, 1, 2], ReduceOp::Max);
        let min = t.reduce(&[0, 1, 2], ReduceOp::Min);
        let mean = t.reduce(&[0, 1, 2], ReduceOp::Mean);
        let sum = t.reduce(&[0, 1, 2], ReduceOp::Sum);
        for c in 0..8 {
            assert!(max[c] >= min[c]);
            assert!((mean[c] - sum[c] / 3.0).abs() < 1e-6);
            assert!(min[c] <= mean[c] && mean[c] <= max[c]);
        }
    }

    #[test]
    fn single_feature_reduce_is_identity() {
        let t = EmbeddingTable::synthetic(5, 4);
        assert_eq!(t.reduce(&[2], ReduceOp::Sum), t.row(2).to_vec());
    }

    #[test]
    #[should_panic(expected = "empty feature set")]
    fn empty_reduce_panics() {
        EmbeddingTable::synthetic(5, 4).reduce(&[], ReduceOp::Sum);
    }

    #[test]
    fn embeddings_are_deterministic() {
        let a = EmbeddingTable::synthetic(100, 16);
        let b = EmbeddingTable::synthetic(100, 16);
        assert_eq!(a.row(57), b.row(57));
        assert_eq!(a.row_bytes(), 64);
    }

    #[test]
    fn mlp_forward_shapes_and_relu() {
        let mlp = Mlp::synthetic(&[8, 4, 2]);
        assert_eq!(mlp.depth(), 2);
        let y = mlp.forward(&[0.5; 8]);
        assert_eq!(y.len(), 2);
        assert_eq!(mlp.flops(), 8 * 4 + 4 * 2);
    }

    #[test]
    fn inference_is_deterministic_and_sensitive() {
        let m = DlrmModel::synthetic(1000, 16);
        let a = m.infer(&[1, 2, 3]);
        let b = m.infer(&[1, 2, 3]);
        let c = m.infer(&[4, 5, 6]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
