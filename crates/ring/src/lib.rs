//! Lock-free ring buffers — Rambda's unified communication abstraction.
//!
//! Sec. III-A of the paper builds both inter-machine (client ⇄ server over
//! one-sided RDMA write) and intra-machine (CPU ⇄ cc-accelerator over
//! coherent load/store) communication on the *same* primitive: a pair of
//! single-producer/single-consumer lock-free ring buffers with credit-based
//! flow control, never shared across connections (to avoid atomics on the
//! head/tail), optionally shared across threads of one endpoint behind a
//! dispatch layer.
//!
//! This crate implements that primitive for real (atomics, not simulation):
//!
//! * [`spsc`] — a Lamport-style single-producer/single-consumer queue.
//! * [`BufferPair`] / [`ClientEnd`] / [`ServerEnd`] — the request/response
//!   pair with the paper's credit rules (the client may only issue while the
//!   in-flight window has room; both sides learn progress purely from the
//!   rings, one network trip per message).
//! * [`PointerBuffer`] / [`TailTracker`] — the 4-byte-entry pointer buffer
//!   used to shrink the cpoll region at scale (Fig. 3(c)), including the
//!   coalesced-signal recovery rule of Sec. III-C.
//! * [`dispatch`] — Flock-style sharing of one connection across worker
//!   threads through a dedicated dispatch thread.
//! * [`rpc`] — the HERD-style RPC frame format with torn-write detection.

// `unsafe` in this crate is confined to `spsc` and audited by
// `cargo xtask analyze` (rule R3): every unsafe block carries a SAFETY
// comment, and the interleaving model in [`model`] exhaustively checks the
// slot protocol those comments rely on.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod dispatch;
pub mod model;
pub mod rpc;
pub mod spsc;

mod pair;
mod pointer;

pub use dispatch::{run_dispatcher, shared_connection, DispatchGone, Dispatcher, SharedClient};
pub use pair::{BufferPair, ClientEnd, IssueError, ServerEnd};
pub use pointer::{PointerBuffer, TailTracker};
pub use rpc::{DecodeError, Frame, OpCode};
pub use spsc::{channel, Consumer, Producer};
