//! The Sec. III-E programming model end-to-end, without the simulator:
//! register an application with the framework (rings + RNIC regions +
//! cpoll region), share one connection across worker threads through a
//! Flock-style dispatcher, and frame requests with the HERD-style RPC
//! codec — the accelerator-facing data path, exercised functionally.
//!
//! Run: `cargo run --release -p rambda-examples --bin programming_model`

use rambda::{AppRegistration, CpollLayout, Framework, Testbed};
use rambda_coherence::CpollChecker;
use rambda_examples::{banner, metric};
use rambda_fabric::NodeId;
use rambda_ring::rpc::{Frame, OpCode};
use rambda_ring::{run_dispatcher, shared_connection, BufferPair};
use rambda_rnic::RnicEndpoint;

fn main() {
    let testbed = Testbed::default();
    let mut rnic = RnicEndpoint::new(NodeId(1), testbed.rnic.clone(), testbed.pcie.clone());
    let mut cpoll = CpollChecker::new(testbed.cc.local_cache_bytes);
    let mut framework = Framework::new();

    banner("1. register a small app: rings pin in the local cache");
    let small = framework
        .register_app::<Frame, Frame>(
            AppRegistration::new("kvs", 16).with_rings(32, 64),
            &mut rnic,
            &mut cpoll,
        )
        .expect("registration");
    metric("connections", small.connections.len());
    metric("cpoll layout", format!("{:?}", small.layout));
    assert_eq!(small.layout, CpollLayout::PinnedRings);

    banner("2. register a large app: falls back to the pointer buffer");
    let large = framework
        .register_app::<Frame, Frame>(
            AppRegistration::new("tx", 256).with_rings(1024, 1024),
            &mut rnic,
            &mut cpoll,
        )
        .expect("registration");
    metric("cpoll layout", format!("{:?}", large.layout));
    metric("pointer-buffer footprint (bytes)", large.pointer_buffer.as_ref().unwrap().region_bytes());

    banner("3. share one connection across 4 worker threads (RPC-framed)");
    let (clients, mut dispatcher) = shared_connection::<Frame, Frame>(4);
    let (mut conn, mut server) = BufferPair::with_capacity::<Frame, Frame>(16);
    let workers: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(w, client)| {
            std::thread::spawn(move || {
                let mut checks = 0;
                for i in 0..200u32 {
                    let req =
                        Frame::new(OpCode::Get, (w as u32) << 16 | i, format!("key-{w}-{i}").into_bytes());
                    let resp = client.call(req).expect("dispatcher alive");
                    assert_eq!(resp.op, OpCode::Response);
                    assert_eq!(resp.request_id, (w as u32) << 16 | i);
                    checks += 1;
                }
                checks
            })
        })
        .collect();
    // The dedicated dispatch thread's loop, with an echo "APU" decoding and
    // re-encoding frames (what the APU's (de)serializer does).
    run_dispatcher(
        &mut dispatcher,
        &mut conn,
        &mut server,
        |req| {
            let decoded = Frame::decode(&req.encode()).expect("valid frame");
            Frame::new(OpCode::Response, decoded.request_id, decoded.payload)
        },
        4 * 200,
    );
    let total: i32 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    metric("RPC round trips verified", total);
    metric("single shared QP, in-flight now", dispatcher.in_flight());
}
