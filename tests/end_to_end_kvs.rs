//! End-to-end KVS integration: the three serving designs run the same
//! workload over the same functional store and must agree functionally
//! while exhibiting the paper's performance ordering.

use rambda::Testbed;
use rambda_accel::DataLocation;
use rambda_des::SimRng;
use rambda_kvs::designs::{run_cpu, run_rambda, run_smartnic};
use rambda_kvs::store::{KvConfig, KvStore};
use rambda_kvs::KvsParams;
use rambda_workloads::{KeyDist, KvMix};

#[test]
fn all_designs_complete_the_full_workload() {
    let tb = Testbed::default();
    let p = KvsParams { requests: 20_000, ..KvsParams::quick() };
    let expected = p.requests - (p.requests as f64 * 0.1) as u64; // post-warm-up
    for stats in [
        run_cpu(&tb, &p),
        run_smartnic(&tb, &p),
        run_rambda(&tb, &p, DataLocation::HostDram),
        run_rambda(&tb, &p, DataLocation::LocalDdr),
        run_rambda(&tb, &p, DataLocation::LocalHbm),
    ] {
        assert_eq!(stats.completed, expected, "lost or duplicated requests");
        assert!(stats.throughput_ops > 0.0);
        assert!(stats.latency.count() == stats.completed);
    }
}

#[test]
fn designs_see_identical_operation_streams() {
    // The workload generator is seeded: every design must process the exact
    // same sequence of operations, leaving identical stores.
    let p = KvsParams { requests: 5_000, ..KvsParams::quick() };
    let apply = |seed: u64| {
        let mut store = KvStore::new(KvConfig::for_pairs(p.pairs as usize, 64));
        let mix = KvMix::new(KeyDist::uniform(p.pairs), 0.5, 64);
        let mut rng = SimRng::seed(seed);
        for _ in 0..p.requests {
            match mix.next_op(&mut rng) {
                rambda_workloads::KvOp::Get { key } => {
                    store.get(key);
                }
                rambda_workloads::KvOp::Put { key, .. } => {
                    store.put(key, vec![1; 64]);
                }
            }
        }
        store.len()
    };
    assert_eq!(apply(p.seed), apply(p.seed));
}

#[test]
fn performance_ordering_matches_fig8() {
    let tb = Testbed::default();
    let p = KvsParams { requests: 20_000, ..KvsParams::quick() };
    let cpu = run_cpu(&tb, &p).throughput_mops();
    let snic = run_smartnic(&tb, &p).throughput_mops();
    let rambda = run_rambda(&tb, &p, DataLocation::HostDram).throughput_mops();
    assert!(rambda > cpu, "one-sided Rambda should edge out two-sided CPU");
    assert!(cpu > 2.0 * snic, "uniform keys should crush the Smart NIC");
}

#[test]
fn network_saturation_is_the_shared_ceiling() {
    // CPU and Rambda both saturate the same 25 GbE port: their peak
    // throughputs must be within ~15% of the analytic message rate.
    let tb = Testbed::default();
    let p = KvsParams { requests: 30_000, ..KvsParams::quick() };
    let cap = tb.net_msg_rate(72) / 1e6; // GET response: 8 + 64 B payload
    let rambda = run_rambda(&tb, &p, DataLocation::HostDram).throughput_mops();
    let cpu = run_cpu(&tb, &p).throughput_mops();
    assert!(rambda <= cap * 1.02, "rambda {rambda} above wire cap {cap}");
    assert!(rambda >= cap * 0.85, "rambda {rambda} far below wire cap {cap}");
    assert!(cpu >= cap * 0.80, "cpu {cpu} far below wire cap {cap}");
}

#[test]
fn window_scales_latency_not_peak_throughput() {
    // Closed-loop sanity: doubling the outstanding window at saturation
    // raises latency, not throughput.
    let tb = Testbed::default();
    let mut small = KvsParams { requests: 20_000, ..KvsParams::quick() };
    small.window = 8;
    let mut big = small.clone();
    big.window = 32;
    let s = run_rambda(&tb, &small, DataLocation::HostDram);
    let b = run_rambda(&tb, &big, DataLocation::HostDram);
    assert!((b.throughput_mops() / s.throughput_mops() - 1.0).abs() < 0.1);
    assert!(b.mean_us() > 2.0 * s.mean_us());
}
