//! The analyzer's rule engine.
//!
//! Ten rules, each enforcing one repo invariant (DESIGN.md §8 and §13):
//!
//! * **R1** — no `HashMap`/`HashSet` in simulation crates: their iteration
//!   order is randomized per process and can leak into event ordering and
//!   run reports. Use `BTreeMap`/`BTreeSet` or the sorted-iteration
//!   `rambda_des::DetHashMap` wrapper (xtask doesn't link the simulation
//!   crates, so no intra-doc link here).
//! * **R2** — no wall-clock (`std::time::Instant` / `SystemTime`), no
//!   `thread::spawn`, no `std::env` / `std::fs` access in simulation crates:
//!   a simulation is a pure function of its config and seed.
//! * **R3** — `unsafe` is confined to the ring crate; every `unsafe` there
//!   is preceded by a `// SAFETY:` comment; every other crate's `lib.rs`
//!   carries `#![forbid(unsafe_code)]`; the ring crate's `lib.rs` carries
//!   `#![deny(unsafe_op_in_unsafe_fn)]`.
//! * **R4** — every `pub` item in the foundation crates (`des`, `metrics`,
//!   `trace`) has a doc comment.
//! * **R5** — no `println!` / `eprintln!` (nor `print!` / `eprint!`)
//!   outside driver binaries: a simulation reports through `RunReport` and
//!   the flight recorder, never by writing to the terminal mid-run.
//! * **R6** — no `#[deprecated]` runner shim may exist, and no in-tree
//!   code still calls one: the legacy `run_*_report` entry points are
//!   deleted outright, `SimBuilder` is the sole run entry point, and a
//!   fresh deprecation cycle would silently reopen the double-API surface.
//! * **R7** — partition safety: no `static mut`, no `thread_local!`, and
//!   no shared-ownership / interior-mutability cell (`Rc`, `RefCell`,
//!   `Cell`, ...) on a type reachable from a simulated machine through the
//!   field-type graph. Any of these would alias state across machines once
//!   the DES executes partitions conservatively in parallel (ROADMAP
//!   item 2); the diagnostic carries the reachability path.
//! * **R8** — RNG provenance: every RNG in simulation crates flows from
//!   the workload seed via a salting call (`SimRng::stream(seed, SALT)` /
//!   `fork`). Literal seeds, ambient entropy sources, RNG `.clone()`, and
//!   a single RNG owned beside multiple machines (one stream feeding both
//!   sides of a future partition boundary) are all flagged.
//! * **R9** — identity coverage: every counter suffix a stats crate
//!   publishes from `publish_metrics` into the `MetricSet` must appear in
//!   some `validate_*` conservation identity in the metrics crate, so new
//!   counters can't land unguarded.
//! * **R10** — scope coverage: every counter published under the `scope.`
//!   or `hot.` prefix (the scoped-metrics mirrors, DESIGN.md §15) must
//!   appear in the dedicated `validate_scopes` identity specifically —
//!   coverage by some other `validate_*` function does not count, because
//!   only the scope conservation identities actually cross-check the
//!   rollup and sketch invariants those mirrors summarize.
//!
//! R1, R2, R4, R5, R7 and R8 skip `#[cfg(test)]` modules: a test may model
//! against a `HashMap`, spawn threads, seed an RNG literally, or print
//! diagnostics without affecting simulation output. R1, R2, R5, R7 and R8
//! also skip `src/bin/` targets — a driver binary is ordinary host code
//! that may read flags and write files. R3 is enforced everywhere —
//! undocumented `unsafe` in a test is still a bug. R6 skips test modules
//! and `use` statements (re-exporting a shim keeps it reachable without
//! endorsing it) and allows calls within the defining file.
//!
//! R1–R5 operate on the token stream; R6–R10 consume the item-level parse
//! layer ([`crate::parse`]): declarations, attribute text, `impl`
//! membership, struct fields and the workspace type graph. Both views come
//! from the same [`ParsedFile`], so "test code" means the same thing to
//! every rule.
//!
//! Violations can be allowlisted in `xtask/analyze.allow`; every entry
//! must carry a trailing `# reason` comment, and stale entries (matching
//! nothing) are themselves errors so the file stays honest.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{Token, TokenKind};
use crate::parse::{ItemKind, ParsedFile, TypeGraph, Vis};

/// What the analyzer looks at and which crates each rule applies to.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory containing `crates/`).
    pub root: PathBuf,
    /// Crate directory names (under `crates/`) holding simulation state;
    /// R1, R2, R7 and R8 apply here.
    pub sim_crates: Vec<String>,
    /// The single crate directory allowed to contain `unsafe` (R3).
    pub unsafe_crate: String,
    /// Crate directory names whose whole `pub` surface must be documented
    /// (R4).
    pub doc_crates: Vec<String>,
    /// Crate directory names allowed to print outside `src/bin/` targets
    /// (R5) — the table-rendering bench crate.
    pub print_crates: Vec<String>,
    /// The type representing one simulated machine: the root of R7's
    /// reachability walk and the partition boundary R8 guards.
    pub machine_type: String,
    /// Crate directory names whose `publish_metrics` counter suffixes R9
    /// and R10 collect.
    pub stats_crates: Vec<String>,
    /// Crate directory names whose `validate_*` functions R9 and R10
    /// search for conservation identities.
    pub identity_crates: Vec<String>,
    /// Path to the allowlist file, relative to `root`.
    pub allowlist: PathBuf,
}

impl Config {
    /// The Rambda workspace configuration: every crate is a simulation
    /// crate except `ring` (real atomics, verified by the interleaving
    /// model in `crates/ring/src/model.rs` instead).
    pub fn rambda(root: PathBuf) -> Self {
        let sim = [
            "accel",
            "bench",
            "coherence",
            "core",
            "des",
            "dlrm",
            "fabric",
            "kvs",
            "mem",
            "metrics",
            "power",
            "rnic",
            "smartnic",
            "trace",
            "txn",
            "workloads",
        ];
        Config {
            root,
            sim_crates: sim.iter().map(|s| s.to_string()).collect(),
            unsafe_crate: "ring".to_string(),
            doc_crates: vec!["des".to_string(), "metrics".to_string(), "trace".to_string()],
            print_crates: vec!["bench".to_string()],
            machine_type: "Machine".to_string(),
            stats_crates: vec!["rnic".to_string(), "metrics".to_string()],
            identity_crates: vec!["metrics".to_string()],
            allowlist: PathBuf::from("xtask/analyze.allow"),
        }
    }
}

/// One rule violation, pointing at `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule id (`R1`..`R10`).
    pub rule: &'static str,
    /// Path relative to the workspace root, with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The offending token or construct (what allowlist entries match on).
    pub token: String,
    /// How to fix it.
    pub hint: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {} — {}", self.path, self.line, self.rule, self.token, self.hint)
    }
}

/// The outcome of one analyzer run.
#[derive(Debug)]
pub struct Analysis {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Violations covered by the allowlist (reported for transparency).
    pub allowed: Vec<Violation>,
    /// Allowlist entries that matched nothing (errors: delete them).
    pub stale_allows: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Whether the workspace is clean (no violations, no stale entries).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_allows.is_empty()
    }
}

/// One parsed allowlist line: `rule path token-substring  # reason`.
#[derive(Debug)]
struct AllowEntry {
    rule: String,
    path: String,
    token: String,
    raw: String,
    used: bool,
}

fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (lineno, raw_line) in text.lines().enumerate() {
        let (line, reason) = match raw_line.split_once('#') {
            Some((head, tail)) => (head.trim(), Some(tail.trim())),
            None => (raw_line.trim(), None),
        };
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(token), None) => {
                // Every exception must say why it exists: a bare entry is
                // indistinguishable from a forgotten one.
                if reason.is_none_or(str::is_empty) {
                    return Err(format!(
                        "allowlist line {}: entry has no `# reason` — justify the exception: `{raw_line}`",
                        lineno + 1
                    ));
                }
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    path: path.to_string(),
                    token: token.to_string(),
                    raw: raw_line.trim().to_string(),
                    used: false,
                });
            }
            _ => {
                return Err(format!(
                    "allowlist line {}: expected `RULE path token  # reason`, got `{raw_line}`",
                    lineno + 1
                ))
            }
        }
    }
    Ok(entries)
}

/// Runs every rule over `crates/*/src/**/*.rs` under `cfg.root` and applies
/// the allowlist.
///
/// # Errors
///
/// Returns an error if the workspace layout or the allowlist cannot be read.
pub fn analyze(cfg: &Config) -> io::Result<Analysis> {
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    let mut parsed: Vec<ParsedFile> = Vec::new();

    let crates_dir = cfg.root.join("crates");
    let mut crate_dirs: Vec<PathBuf> =
        fs::read_dir(&crates_dir)?.filter_map(|e| e.ok()).map(|e| e.path()).filter(|p| p.is_dir()).collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let crate_name = crate_dir.file_name().unwrap().to_string_lossy().to_string();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        let mut saw_lib_rs = false;
        for file in &files {
            files_scanned += 1;
            let rel = rel_path(&cfg.root, file);
            let source = fs::read_to_string(file)?;
            let pf = ParsedFile::parse(&rel, &crate_name, source);
            let is_lib_rs =
                file.file_name().is_some_and(|n| n == "lib.rs") && file.parent().is_some_and(|p| p == src);
            saw_lib_rs |= is_lib_rs;

            if cfg.sim_crates.contains(&crate_name) && !pf.is_bin {
                rule_r1(&pf, &mut violations);
                rule_r2(&pf, &mut violations);
            }
            rule_r3_file(cfg, &crate_name, is_lib_rs, &pf, &mut violations);
            if cfg.doc_crates.contains(&crate_name) {
                rule_r4(&pf, &mut violations);
            }
            if !cfg.print_crates.contains(&crate_name) && !pf.is_bin {
                rule_r5(&pf, &mut violations);
            }
            if cfg.sim_crates.contains(&crate_name) && !pf.is_bin {
                rule_r8_file(cfg, &pf, &mut violations);
            }
            parsed.push(pf);
        }
        if !saw_lib_rs && !files.is_empty() {
            violations.push(Violation {
                rule: "R3",
                path: rel_path(&cfg.root, &src.join("lib.rs")),
                line: 1,
                token: "lib.rs".to_string(),
                hint: "crate has no src/lib.rs to carry its unsafe-code lint attribute".to_string(),
            });
        }
    }

    rule_r6(&parsed, &mut violations);
    rule_r7(cfg, &parsed, &mut violations);
    rule_r9(cfg, &parsed, &mut violations);
    rule_r10(cfg, &parsed, &mut violations);

    // Apply the allowlist.
    let allow_path = cfg.root.join(&cfg.allowlist);
    let mut entries = match fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text).map_err(io::Error::other)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut kept = Vec::new();
    let mut allowed = Vec::new();
    for v in violations {
        let entry =
            entries.iter_mut().find(|a| a.rule == v.rule && a.path == v.path && v.token.contains(&a.token));
        match entry {
            Some(a) => {
                a.used = true;
                allowed.push(v);
            }
            None => kept.push(v),
        }
    }
    let stale_allows = entries.iter().filter(|a| !a.used).map(|a| a.raw.clone()).collect();
    Ok(Analysis { violations: kept, allowed, stale_allows, files_scanned })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// R1: banned hash collections in simulation crates.
fn rule_r1(f: &ParsedFile, out: &mut Vec<Violation>) {
    for (i, t) in f.tokens.iter().enumerate() {
        if f.test_mask[i] {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = t.ident() {
            out.push(Violation {
                rule: "R1",
                path: f.rel.clone(),
                line: t.line,
                token: name.to_string(),
                hint: format!(
                    "iteration order can leak into simulation state; use {} or rambda_des::{}",
                    if name == "HashMap" { "BTreeMap" } else { "BTreeSet" },
                    if name == "HashMap" { "DetHashMap" } else { "DetHashSet" },
                ),
            });
        }
    }
}

/// R2: wall-clock, threads and environment-dependent I/O in sim crates.
fn rule_r2(f: &ParsedFile, out: &mut Vec<Violation>) {
    // Single banned identifiers.
    for (i, t) in f.tokens.iter().enumerate() {
        if f.test_mask[i] {
            continue;
        }
        if let Some(name @ ("Instant" | "SystemTime")) = t.ident() {
            out.push(Violation {
                rule: "R2",
                path: f.rel.clone(),
                line: t.line,
                token: name.to_string(),
                hint: "wall-clock breaks seeded reproducibility; model time with rambda_des::SimTime"
                    .to_string(),
            });
        }
    }
    // Banned `a::b` paths (matched on significant tokens so whitespace and
    // comments between segments cannot hide them).
    let sig: Vec<(usize, &Token)> = f.tokens.iter().enumerate().filter(|(_, t)| !t.is_comment()).collect();
    let banned_paths: [(&str, &str, &str); 3] = [
        ("thread", "spawn", "real threads have no place inside a deterministic simulation"),
        ("std", "env", "environment access makes runs machine-dependent; pass configuration explicitly"),
        ("std", "fs", "filesystem access inside a simulation breaks reproducibility; do I/O in the driver"),
    ];
    for w in sig.windows(4) {
        let [(i0, a), (_, c1), (_, c2), (_, b)] = w else { continue };
        if f.test_mask[*i0] || !c1.is_punct(':') || !c2.is_punct(':') {
            continue;
        }
        for (first, second, why) in &banned_paths {
            if a.ident() == Some(first) && b.ident() == Some(second) {
                out.push(Violation {
                    rule: "R2",
                    path: f.rel.clone(),
                    line: a.line,
                    token: format!("{first}::{second}"),
                    hint: (*why).to_string(),
                });
            }
        }
    }
}

/// R5: print-family macros outside driver binaries and the bench crate.
fn rule_r5(f: &ParsedFile, out: &mut Vec<Violation>) {
    let sig: Vec<(usize, &Token)> = f.tokens.iter().enumerate().filter(|(_, t)| !t.is_comment()).collect();
    for w in sig.windows(2) {
        let [(i0, mac), (_, bang)] = w else { continue };
        if f.test_mask[*i0] || !bang.is_punct('!') {
            continue;
        }
        if let Some(name @ ("println" | "eprintln" | "print" | "eprint")) = mac.ident() {
            out.push(Violation {
                rule: "R5",
                path: f.rel.clone(),
                line: mac.line,
                token: format!("{name}!"),
                hint: "simulation crates stay silent; print from a src/bin driver or the bench tables"
                    .to_string(),
            });
        }
    }
}

/// R6: no deprecated runner shim may exist — `SimBuilder` is the sole run
/// entry point — and nothing in-tree still calls a name that is shimmed.
///
/// Two passes over the parse layer. The first flags every
/// `#[deprecated] pub fn` item outright: the legacy `run_*_report` era is
/// over, and a new deprecation cycle would reopen the double-API surface
/// `SimBuilder` retired. The second flags any identifier use of a flagged
/// name outside its defining file(s), skipping test modules and `use`
/// statements, so stragglers surface even if the definition is
/// allowlisted during a migration.
fn rule_r6(files: &[ParsedFile], out: &mut Vec<Violation>) {
    // name -> files defining a deprecated fn of that name.
    let mut deprecated: BTreeMap<&str, Vec<&str>> = BTreeMap::new();

    for f in files {
        for item in &f.items {
            if item.kind != ItemKind::Fn || item.vis != Vis::Pub || !item.deprecated || item.in_test {
                continue;
            }
            out.push(Violation {
                rule: "R6",
                path: f.rel.clone(),
                line: f.tokens[item.span.0].line,
                token: item.name.clone(),
                hint: "deprecated runner shims are retired; delete the shim — SimBuilder::new(Design::...)\
                       .run() is the only run entry point"
                    .to_string(),
            });
            deprecated.entry(&item.name).or_default().push(&f.rel);
        }
    }

    for f in files {
        for (i, t) in f.tokens.iter().enumerate() {
            if f.test_mask[i] || f.use_mask[i] {
                continue;
            }
            let Some(name) = t.ident() else { continue };
            let Some(defs) = deprecated.get(name) else { continue };
            if defs.iter().any(|d| *d == f.rel) {
                continue;
            }
            out.push(Violation {
                rule: "R6",
                path: f.rel.clone(),
                line: t.line,
                token: name.to_string(),
                hint: "this runner is deprecated; build the run with SimBuilder::new(Design::...).run()"
                    .to_string(),
            });
        }
    }
}

/// The shared-ownership / interior-mutability markers R7 refuses on
/// machine-reachable types: each one lets two partitions alias the same
/// mutable cell (or, for `Rc`, pins the type to one thread).
const SHARED_CELLS: [&str; 8] = ["Rc", "Arc", "RefCell", "Cell", "UnsafeCell", "OnceCell", "Mutex", "RwLock"];

/// R7: partition safety for parallel DES. Flags process-global mutable
/// state (`static mut`, `thread_local!`) in sim crates, and shared-cell
/// fields on any type reachable from the machine type through the
/// workspace field-type graph — each diagnostic carries the reachability
/// path that makes the sharing concrete.
fn rule_r7(cfg: &Config, files: &[ParsedFile], out: &mut Vec<Violation>) {
    let sim: Vec<&ParsedFile> =
        files.iter().filter(|f| cfg.sim_crates.contains(&f.crate_name) && !f.is_bin).collect();

    for f in &sim {
        for item in &f.items {
            if item.in_test {
                continue;
            }
            if item.kind == ItemKind::Static && item.mutable {
                out.push(Violation {
                    rule: "R7",
                    path: f.rel.clone(),
                    line: item.line,
                    token: format!("static mut {}", item.name),
                    hint: "process-global mutable state is shared by every simulated machine; own it \
                           per machine so partitions stay independent"
                        .to_string(),
                });
            }
            if item.kind == ItemKind::MacroCall && item.name == "thread_local" {
                out.push(Violation {
                    rule: "R7",
                    path: f.rel.clone(),
                    line: item.line,
                    token: "thread_local!".to_string(),
                    hint: "thread-local state silently diverges once partitions run on worker threads; \
                           own the state per machine instead"
                        .to_string(),
                });
            }
        }
    }

    let graph = TypeGraph::build(sim.iter().copied());
    let reach = graph.reachable(std::slice::from_ref(&cfg.machine_type));
    for (ty, path) in &reach {
        for def in graph.defs.get(ty).into_iter().flatten() {
            if !cfg.sim_crates.contains(&def.crate_name) {
                continue;
            }
            for field in &def.fields {
                let Some(marker) = field.ty_idents.iter().find(|t| SHARED_CELLS.contains(&t.as_str())) else {
                    continue;
                };
                out.push(Violation {
                    rule: "R7",
                    path: def.rel.clone(),
                    line: field.line,
                    token: format!("{ty}.{}: {marker}", field.name),
                    hint: format!(
                        "{marker} on a type reachable from a simulated machine ({path}) aliases state \
                         across partitions; give each machine exclusive ownership"
                    ),
                });
            }
        }
    }
}

/// Ambient entropy sources R8 bans: any of these severs a run's output
/// from its seed.
const ENTROPY_SOURCES: [&str; 5] = ["thread_rng", "from_entropy", "OsRng", "getrandom", "RandomState"];

/// R8 (per file): RNG provenance. `SimRng::seed` calls outside the RNG's
/// own `impl` must take an argument that names a seed; entropy sources and
/// RNG `.clone()` are banned outright.
fn rule_r8_file(cfg: &Config, f: &ParsedFile, out: &mut Vec<Violation>) {
    // Constructions inside `impl SimRng` are the primitives themselves
    // (`fork` and `stream` both bottom out in `seed`).
    let own_impl: Vec<(usize, usize)> = f
        .items
        .iter()
        .filter(|i| i.kind == ItemKind::Impl && i.name == "SimRng")
        .filter_map(|i| i.body)
        .collect();
    let in_own_impl = |idx: usize| own_impl.iter().any(|&(a, b)| idx >= a && idx <= b);

    let sig: Vec<(usize, &Token)> = f.tokens.iter().enumerate().filter(|(_, t)| !t.is_comment()).collect();

    for (si, &(i0, t)) in sig.iter().enumerate() {
        if f.test_mask[i0] {
            continue;
        }
        // Entropy sources, anywhere in live code.
        if let Some(name) = t.ident() {
            if ENTROPY_SOURCES.contains(&name) {
                out.push(Violation {
                    rule: "R8",
                    path: f.rel.clone(),
                    line: t.line,
                    token: name.to_string(),
                    hint: "ambient entropy severs the run from its seed; all randomness flows from the \
                           workload seed via SimRng::stream(seed, salt)"
                        .to_string(),
                });
            }
        }
        // `SimRng::seed(args)` with args that don't mention a seed.
        if t.ident() == Some("SimRng") && !in_own_impl(i0) {
            let path_call = (
                sig.get(si + 1).map(|&(_, u)| u.is_punct(':')),
                sig.get(si + 2).map(|&(_, u)| u.is_punct(':')),
                sig.get(si + 3).and_then(|&(_, u)| u.ident()),
                sig.get(si + 4).map(|&(_, u)| u.is_punct('(')),
            );
            if let (Some(true), Some(true), Some("seed"), Some(true)) = path_call {
                let args = call_args(&sig, si + 4);
                let arg_idents: Vec<String> =
                    args.iter().filter_map(|t| t.ident()).map(str::to_lowercase).collect();
                if arg_idents.is_empty() {
                    out.push(Violation {
                        rule: "R8",
                        path: f.rel.clone(),
                        line: t.line,
                        token: "SimRng::seed".to_string(),
                        hint: "literal seed severs provenance from the workload seed; derive the stream \
                               with SimRng::stream(cfg.seed, SALT) or fork an existing RNG"
                            .to_string(),
                    });
                } else if !arg_idents.iter().any(|id| id.contains("seed") || id.contains("salt")) {
                    out.push(Violation {
                        rule: "R8",
                        path: f.rel.clone(),
                        line: t.line,
                        token: "SimRng::seed".to_string(),
                        hint: "the seed argument does not flow from a workload seed; thread the run's \
                               seed through and salt it (SimRng::stream / fork)"
                            .to_string(),
                    });
                }
            }
        }
        // `rng.clone()` duplicates a stream: both copies emit the same
        // draws, which is never what a partitioned simulation wants.
        if let Some(name) = t.ident() {
            let is_rng = name == "rng" || name.ends_with("_rng") || name.ends_with("Rng");
            let cloned = sig.get(si + 1).is_some_and(|&(_, u)| u.is_punct('.'))
                && sig.get(si + 2).is_some_and(|&(_, u)| u.ident() == Some("clone"))
                && sig.get(si + 3).is_some_and(|&(_, u)| u.is_punct('('));
            if is_rng && cloned && !in_own_impl(i0) {
                out.push(Violation {
                    rule: "R8",
                    path: f.rel.clone(),
                    line: t.line,
                    token: format!("{name}.clone()"),
                    hint: "cloning an RNG duplicates its stream across owners; fork() a salted child \
                           stream instead"
                        .to_string(),
                });
            }
        }
    }

    // Structural half: one RNG owned beside multiple machines serves both
    // sides of a future partition boundary.
    for item in &f.items {
        if !matches!(item.kind, ItemKind::Struct | ItemKind::Union) || item.in_test {
            continue;
        }
        let machines: usize = item
            .fields
            .iter()
            .map(|fl| {
                if !fl.ty_idents.iter().any(|t| t == &cfg.machine_type) {
                    0
                } else if fl.ty_idents.iter().any(|t| matches!(t.as_str(), "Vec" | "VecDeque" | "BTreeMap")) {
                    2 // a collection of machines is always "more than one"
                } else {
                    1
                }
            })
            .sum();
        if machines < 2 {
            continue;
        }
        for fl in &item.fields {
            if fl.ty_idents.iter().any(|t| t == "SimRng") {
                out.push(Violation {
                    rule: "R8",
                    path: f.rel.clone(),
                    line: fl.line,
                    token: format!("{}.{}: SimRng", item.name, fl.name),
                    hint: format!(
                        "one RNG owned beside {machines} machines feeds both sides of a partition \
                         boundary; fork() a salted per-machine stream instead"
                    ),
                });
            }
        }
    }
}

/// The argument tokens of a call whose `(` sits at significant index
/// `open` — everything up to the matching `)`.
fn call_args<'a>(sig: &[(usize, &'a Token)], open: usize) -> Vec<&'a Token> {
    let mut depth = 0i32;
    let mut args = Vec::new();
    for &(_, t) in &sig[open..] {
        match t.kind {
            TokenKind::Punct('(') => {
                depth += 1;
                if depth == 1 {
                    continue;
                }
            }
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        args.push(t);
    }
    args
}

/// One counter suffix published from a stats crate's `publish_metrics`,
/// with the location the diagnostic points at. Shared by R9 and R10.
struct Published {
    rel: String,
    line: u32,
    suffix: String,
}

/// Collects every `m.set("...")` counter suffix inside `publish_metrics`
/// functions of the stats crates (the shared front half of R9 and R10).
fn collect_published(cfg: &Config, files: &[ParsedFile]) -> Vec<Published> {
    let mut published: Vec<Published> = Vec::new();
    for f in files.iter().filter(|f| cfg.stats_crates.contains(&f.crate_name)) {
        for item in &f.items {
            if item.kind != ItemKind::Fn || item.name != "publish_metrics" || item.in_test {
                continue;
            }
            let Some((b0, b1)) = item.body else { continue };
            let body = &f.tokens[b0..=b1.min(f.tokens.len().saturating_sub(1))];
            let sig: Vec<&Token> = body.iter().filter(|t| !t.is_comment()).collect();
            for (i, t) in sig.iter().enumerate() {
                if t.ident() != Some("set")
                    || !sig.get(i.wrapping_sub(1)).is_some_and(|u| u.is_punct('.'))
                    || !sig.get(i + 1).is_some_and(|u| u.is_punct('('))
                {
                    continue;
                }
                // The first string literal among the arguments is the
                // counter name (possibly a `format!` template).
                let mut depth = 0i32;
                for u in &sig[i + 1..] {
                    match u.kind {
                        TokenKind::Punct('(') => depth += 1,
                        TokenKind::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if let Some(text) = u.str_text() {
                        let suffix = strip_placeholders(text);
                        let suffix = suffix.trim_start_matches('.');
                        if !suffix.is_empty() {
                            published.push(Published {
                                rel: f.rel.clone(),
                                line: u.line,
                                suffix: suffix.to_string(),
                            });
                        }
                        break;
                    }
                }
            }
        }
    }
    published
}

/// Collects every suffix-like string literal inside identity-crate
/// validator functions whose name satisfies `accept` (the shared back half
/// of R9 and R10).
fn collect_covered(cfg: &Config, files: &[ParsedFile], accept: impl Fn(&str) -> bool) -> Vec<String> {
    let mut covered: Vec<String> = Vec::new();
    for f in files.iter().filter(|f| cfg.identity_crates.contains(&f.crate_name)) {
        for item in &f.items {
            if item.kind != ItemKind::Fn || !accept(&item.name) || item.in_test {
                continue;
            }
            let Some((b0, b1)) = item.body else { continue };
            for t in &f.tokens[b0..=b1.min(f.tokens.len().saturating_sub(1))] {
                let Some(text) = t.str_text() else { continue };
                let n = strip_placeholders(text);
                // Error-message literals contain spaces; counter suffixes
                // don't.
                if !n.is_empty() && !n.contains(char::is_whitespace) {
                    covered.push(n);
                }
            }
        }
    }
    covered
}

/// Whether any collected identity literal mentions `suffix`.
fn covers(covered: &[String], suffix: &str) -> bool {
    covered.iter().any(|c| c.trim_start_matches('.') == suffix || c.ends_with(&format!(".{suffix}")))
}

/// R9: identity coverage. Every counter suffix published from a stats
/// crate's `publish_metrics` must appear in some `validate_*` string
/// literal in the metrics crate — the conservation identities read
/// counters by suffix, so an unmentioned suffix is an unguarded counter.
fn rule_r9(cfg: &Config, files: &[ParsedFile], out: &mut Vec<Violation>) {
    let published = collect_published(cfg, files);
    let covered = collect_covered(cfg, files, |name| name.starts_with("validate"));
    for p in &published {
        if !covers(&covered, &p.suffix) {
            out.push(Violation {
                rule: "R9",
                path: p.rel.clone(),
                line: p.line,
                token: p.suffix.clone(),
                hint: format!(
                    "counter `{}` is published into the MetricSet but no validate_* conservation \
                     identity mentions it; add one to the metrics report validation",
                    p.suffix
                ),
            });
        }
    }
}

/// R10: scope coverage. Every counter published under the `scope.` / `hot.`
/// prefixes (the scoped-metrics mirrors) must appear in the dedicated
/// `validate_scopes` identity — being mentioned by some other `validate_*`
/// function satisfies R9 but not R10, because only `validate_scopes`
/// cross-checks the per-scope rollup and hot-key sketch invariants those
/// mirrors summarize.
fn rule_r10(cfg: &Config, files: &[ParsedFile], out: &mut Vec<Violation>) {
    let published = collect_published(cfg, files);
    let covered = collect_covered(cfg, files, |name| name == "validate_scopes");
    for p in published.iter().filter(|p| p.suffix.starts_with("scope.") || p.suffix.starts_with("hot.")) {
        if !covers(&covered, &p.suffix) {
            out.push(Violation {
                rule: "R10",
                path: p.rel.clone(),
                line: p.line,
                token: p.suffix.clone(),
                hint: format!(
                    "scoped-metrics mirror `{}` is published into the MetricSet but validate_scopes \
                     never mentions it; extend the scope conservation identities",
                    p.suffix
                ),
            });
        }
    }
}

/// Removes `{...}` format placeholders from a format-string literal:
/// `"{prefix}.doorbells"` becomes `".doorbells"`.
fn strip_placeholders(text: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in text.chars() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// R3, per file: unsafe confinement, SAFETY comments, lint attributes.
fn rule_r3_file(cfg: &Config, crate_name: &str, is_lib_rs: bool, f: &ParsedFile, out: &mut Vec<Violation>) {
    let is_unsafe_crate = crate_name == cfg.unsafe_crate;
    let tokens = &f.tokens;
    let path = &f.rel;

    if !is_unsafe_crate {
        for t in tokens {
            if t.ident() == Some("unsafe") {
                out.push(Violation {
                    rule: "R3",
                    path: path.to_string(),
                    line: t.line,
                    token: "unsafe".to_string(),
                    hint: format!(
                        "unsafe is confined to crates/{}; move the code there or find a safe formulation",
                        cfg.unsafe_crate
                    ),
                });
            }
        }
        if is_lib_rs && !has_ident_pair(tokens, "forbid", "unsafe_code") {
            out.push(Violation {
                rule: "R3",
                path: path.to_string(),
                line: 1,
                token: "forbid(unsafe_code)".to_string(),
                hint: "add #![forbid(unsafe_code)] at the top of lib.rs".to_string(),
            });
        }
    } else {
        if is_lib_rs && !has_ident_pair(tokens, "deny", "unsafe_op_in_unsafe_fn") {
            out.push(Violation {
                rule: "R3",
                path: path.to_string(),
                line: 1,
                token: "deny(unsafe_op_in_unsafe_fn)".to_string(),
                hint: "add #![deny(unsafe_op_in_unsafe_fn)] at the top of lib.rs".to_string(),
            });
        }
        // Every `unsafe` needs a `// SAFETY:` comment directly above it.
        for (i, t) in tokens.iter().enumerate() {
            if t.ident() != Some("unsafe") {
                continue;
            }
            // Walk back through the comment block above the `unsafe`: each
            // comment must sit within 5 lines of the code below it, but a
            // contiguous run of comment lines counts as one block, so a long
            // multi-line SAFETY justification is credited in full.
            let mut window_line = t.line;
            let mut documented = false;
            for p in tokens[..i].iter().rev() {
                // Stop at the previous `unsafe`: one comment cannot cover two.
                if p.ident() == Some("unsafe") {
                    break;
                }
                if !p.is_comment() {
                    continue;
                }
                if window_line.saturating_sub(p.end_line) > 5 {
                    break;
                }
                if p.comment_text().is_some_and(|c| c.contains("SAFETY:")) {
                    documented = true;
                    break;
                }
                window_line = p.line;
            }
            if !documented {
                out.push(Violation {
                    rule: "R3",
                    path: path.to_string(),
                    line: t.line,
                    token: "unsafe".to_string(),
                    hint: "precede every unsafe with a // SAFETY: comment justifying it".to_string(),
                });
            }
        }
    }
}

/// `first` followed (within the next few significant tokens) by `second` —
/// matches `#![forbid(unsafe_code)]` without caring about exact punctuation.
fn has_ident_pair(tokens: &[Token], first: &str, second: &str) -> bool {
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    sig.iter().enumerate().any(|(i, t)| {
        t.ident() == Some(first) && sig[i + 1..].iter().take(4).any(|u| u.ident() == Some(second))
    })
}

/// R4: every `pub` item carries a doc comment. Re-hosted on the parse
/// layer: an item is documented iff a `///` doc comment or `#[doc]`
/// attribute sits in its preamble; `pub(crate)`, `pub use`, modules
/// (documented by `//!` inside their own file) and struct fields are
/// exempt.
fn rule_r4(f: &ParsedFile, out: &mut Vec<Violation>) {
    for item in &f.items {
        if item.vis != Vis::Pub || item.in_test || item.docd {
            continue;
        }
        let kw = match item.kind {
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Trait => "trait",
            ItemKind::Union => "union",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::TypeAlias => "type",
            ItemKind::Mod | ItemKind::Impl | ItemKind::Use | ItemKind::MacroCall => continue,
        };
        out.push(Violation {
            rule: "R4",
            path: f.rel.clone(),
            line: item.line,
            token: format!("pub {kw} {}", item.name),
            hint: "document every public item in the foundation crates (/// ...)".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse("test.rs", "kvs", src.to_string())
    }

    fn run_rule<F>(src: &str, f: F) -> Vec<Violation>
    where
        F: Fn(&ParsedFile, &mut Vec<Violation>),
    {
        let pf = parse(src);
        let mut out = Vec::new();
        f(&pf, &mut out);
        out
    }

    #[test]
    fn r1_flags_hash_collections_but_not_in_tests_or_strings() {
        let v = run_rule("use std::collections::HashMap;\nlet s: HashSet<u8>;", rule_r1);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].token, "HashMap");
        assert_eq!(v[1].line, 2);
        assert!(run_rule("let s = \"HashMap\"; // HashMap", rule_r1).is_empty());
        assert!(run_rule("#[cfg(test)]\nmod tests { use std::collections::HashMap; }", rule_r1).is_empty());
    }

    #[test]
    fn r2_flags_wallclock_threads_and_env() {
        let v = run_rule(
            "use std::time::Instant;\nfn f() { std::thread::spawn(f); let h = std::env::var(\"HOME\"); }",
            rule_r2,
        );
        let tokens: Vec<&str> = v.iter().map(|v| v.token.as_str()).collect();
        assert!(tokens.contains(&"Instant"));
        assert!(tokens.contains(&"thread::spawn"));
        assert!(tokens.contains(&"std::env"));
        assert!(run_rule("#[cfg(test)]\nmod tests { fn f() { std::thread::spawn(g); } }", rule_r2).is_empty());
    }

    fn run_r3(src: &str, crate_name: &str, is_lib: bool) -> Vec<Violation> {
        let cfg = Config::rambda(PathBuf::from("."));
        let pf = ParsedFile::parse("test.rs", crate_name, src.to_string());
        let mut out = Vec::new();
        rule_r3_file(&cfg, crate_name, is_lib, &pf, &mut out);
        out
    }

    #[test]
    fn r3_unsafe_outside_ring_is_flagged() {
        let v = run_r3("fn f() { unsafe { g() } }", "kvs", false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].token, "unsafe");
    }

    #[test]
    fn r3_lib_rs_lint_attributes() {
        assert_eq!(run_r3("#![forbid(unsafe_code)]", "kvs", true).len(), 0);
        assert_eq!(run_r3("//! docs only", "kvs", true).len(), 1);
        assert_eq!(run_r3("#![deny(unsafe_op_in_unsafe_fn)]", "ring", true).len(), 0);
        assert_eq!(run_r3("//! docs only", "ring", true).len(), 1);
    }

    #[test]
    fn r3_safety_comments_in_ring() {
        let ok = "// SAFETY: exclusive owner.\nunsafe { g() }";
        assert!(run_r3(ok, "ring", false).is_empty());
        let missing = "unsafe { g() }";
        assert_eq!(run_r3(missing, "ring", false).len(), 1);
        // One comment cannot cover two unsafe sites.
        let shared =
            "// SAFETY: covers only the first.\nunsafe impl Send for X {}\nunsafe impl Sync for X {}";
        assert_eq!(run_r3(shared, "ring", false).len(), 1);
        // A comment more than five lines up does not count.
        let far = "// SAFETY: too far away.\n\n\n\n\n\n\nunsafe { g() }";
        assert_eq!(run_r3(far, "ring", false).len(), 1);
    }

    #[test]
    fn r4_requires_docs_on_pub_items() {
        let v = run_rule("pub fn f() {}\n/// documented\npub struct S;", rule_r4);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].token, "pub fn f");
        // Attributes between the doc comment and the item are fine.
        assert!(run_rule("/// doc\n#[derive(Debug)]\npub struct S;", rule_r4).is_empty());
        // pub(crate), pub use and #[doc] attributes are exempt/satisfied.
        assert!(run_rule("pub(crate) fn f() {}\npub use foo::Bar;", rule_r4).is_empty());
        assert!(run_rule("#[doc = \"x\"]\npub fn f() {}", rule_r4).is_empty());
        // `pub const NAME` is an item; `pub const fn` reports as fn.
        let v = run_rule("pub const X: u8 = 0;\npub const fn f() {}", rule_r4);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].token, "pub const X");
        assert_eq!(v[1].token, "pub fn f");
        // Methods inside impl blocks are covered too.
        let v = run_rule("pub struct S;\nimpl S { pub fn m(&self) {} }", rule_r4);
        assert!(v.iter().any(|v| v.token == "pub fn m"), "{v:?}");
    }

    #[test]
    fn r5_flags_print_macros_outside_tests() {
        let v = run_rule("fn f() { println!(\"x\"); eprint!(\"y\"); }", rule_r5);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].token, "println!");
        assert_eq!(v[1].token, "eprint!");
        // Test modules, strings and comments are exempt.
        assert!(run_rule("#[cfg(test)]\nmod tests { fn f() { println!(\"x\"); } }", rule_r5).is_empty());
        assert!(run_rule("let s = \"println!\"; // println!(no)", rule_r5).is_empty());
        // A bare `print` identifier without `!` is not a macro call.
        assert!(run_rule("fn print() {} fn g() { print(); }", rule_r5).is_empty());
    }

    fn parsed(rel: &str, src: &str) -> ParsedFile {
        let crate_name = rel.split('/').nth(1).unwrap_or("kvs");
        ParsedFile::parse(rel, crate_name, src.to_string())
    }

    #[test]
    fn r6_flags_every_deprecated_shim_definition() {
        // Even a well-routed note no longer saves a shim: the deprecation
        // cycle is over and the definition itself is the violation.
        let routed = parsed(
            "crates/kvs/src/designs.rs",
            "#[deprecated(note = \"use SimBuilder with Design::kvs_rambda\")]\npub fn run_old() {}",
        );
        let mut out = Vec::new();
        rule_r6(&[routed], &mut out);
        assert_eq!(out.len(), 1, "a shim definition must trip R6: {out:?}");
        assert_eq!(out[0].rule, "R6");
        assert_eq!(out[0].token, "run_old");
        assert!(out[0].hint.contains("delete the shim"), "{}", out[0].hint);

        // Non-shim deprecations outside the pattern stay out of scope: a
        // private fn, or one inside a test module.
        let exempt = parsed(
            "crates/kvs/src/designs.rs",
            "#[deprecated]\nfn private_old() {}\n#[cfg(test)]\nmod t { #[deprecated]\npub fn test_old() {} }",
        );
        let mut out = Vec::new();
        rule_r6(&[exempt], &mut out);
        assert!(out.is_empty(), "private and test-module fns are exempt: {out:?}");
    }

    #[test]
    fn r6_flags_external_callers_but_not_reexports_or_tests() {
        let def = parsed(
            "crates/kvs/src/designs.rs",
            "#[deprecated(note = \"use SimBuilder\")]\npub fn run_old() {}\nfn helper() { run_old(); }",
        );
        let reexport = parsed(
            "crates/kvs/src/lib.rs",
            "#[allow(deprecated)]\npub use designs::run_old;\n#[cfg(test)]\nmod t { fn f() { run_old(); } }",
        );
        let caller = parsed("crates/bench/src/harness.rs", "fn sweep() { let r = run_old(); }");
        let mut out = Vec::new();
        rule_r6(&[def, reexport, caller], &mut out);
        // The definition itself plus the one live external caller; the
        // re-export, the test-module call, and the same-file helper stay
        // exempt.
        assert_eq!(out.len(), 2, "definition + live external caller: {out:?}");
        assert_eq!(out[0].path, "crates/kvs/src/designs.rs");
        assert_eq!(out[1].path, "crates/bench/src/harness.rs");
        assert_eq!(out[1].token, "run_old");
    }

    fn run_cross<F>(files: Vec<ParsedFile>, f: F) -> Vec<Violation>
    where
        F: Fn(&Config, &[ParsedFile], &mut Vec<Violation>),
    {
        let cfg = Config::rambda(PathBuf::from("."));
        let mut out = Vec::new();
        f(&cfg, &files, &mut out);
        out
    }

    #[test]
    fn r7_flags_globals_and_reachable_cells_with_paths() {
        let v = run_cross(
            vec![parsed(
                "crates/kvs/src/lib.rs",
                "pub static mut TICKS: u64 = 0;\nthread_local! { static S: u64 = 0; }",
            )],
            rule_r7,
        );
        let tokens: Vec<&str> = v.iter().map(|v| v.token.as_str()).collect();
        assert!(tokens.contains(&"static mut TICKS"), "{v:?}");
        assert!(tokens.contains(&"thread_local!"), "{v:?}");

        // A RefCell two hops from Machine is flagged, with the path.
        let v = run_cross(
            vec![
                parsed("crates/core/src/machine.rs", "pub struct Machine { pub cache: CacheModel }"),
                parsed(
                    "crates/mem/src/cache.rs",
                    "use std::rc::Rc;\npub struct CacheModel { pub lines: Rc<RefCell<u64>> }",
                ),
            ],
            rule_r7,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].token.contains("CacheModel.lines"), "{v:?}");
        assert!(v[0].hint.contains("Machine"), "the hint carries the path: {v:?}");

        // The same cell on an unreachable type is NOT flagged.
        let v = run_cross(
            vec![parsed("crates/mem/src/cache.rs", "pub struct Island { pub c: RefCell<u64> }")],
            rule_r7,
        );
        assert!(v.is_empty(), "unreachable types are not partition hazards: {v:?}");

        // Test modules are exempt.
        let v = run_cross(
            vec![parsed("crates/kvs/src/lib.rs", "#[cfg(test)]\nmod t { pub static mut X: u64 = 0; }")],
            rule_r7,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r8_flags_literal_seeds_entropy_and_clones() {
        let cfg = Config::rambda(PathBuf::from("."));
        let run = |src: &str| {
            let pf = parsed("crates/kvs/src/lib.rs", src);
            let mut out = Vec::new();
            rule_r8_file(&cfg, &pf, &mut out);
            out
        };
        let v = run("fn f() { let rng = SimRng::seed(42); }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].token, "SimRng::seed");
        // A seed that flows from the workload config passes.
        assert!(run("fn f(params: &P) { let rng = SimRng::seed(params.seed); }").is_empty());
        assert!(run("fn f(cfg: &C) { let rng = SimRng::seed(cfg.seed ^ SALT); }").is_empty());
        // A non-seed argument is an unsalted root.
        let v = run("fn f(tick: u64) { let rng = SimRng::seed(tick); }");
        assert_eq!(v.len(), 1, "{v:?}");
        // Entropy sources and clones.
        let v = run("fn f() { let s = RandomState::new(); }");
        assert_eq!(v[0].token, "RandomState");
        let v = run("fn f(rng: &SimRng) { let dup = rng.clone(); }");
        assert_eq!(v[0].token, "rng.clone()");
        // Inside `impl SimRng`, seed() calls are the primitive itself.
        assert!(
            run("impl SimRng { pub fn fork(&mut self) -> Self { SimRng::seed(self.next()) } }").is_empty()
        );
        // Tests may seed literally.
        assert!(run("#[cfg(test)]\nmod t { fn f() { let r = SimRng::seed(42); } }").is_empty());
    }

    #[test]
    fn r8_flags_one_rng_owned_beside_multiple_machines() {
        let cfg = Config::rambda(PathBuf::from("."));
        let pf = parsed(
            "crates/txn/src/designs.rs",
            "struct World { client: rambda::Machine, server: rambda::Machine, rng: SimRng }",
        );
        let mut out = Vec::new();
        rule_r8_file(&cfg, &pf, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].token, "World.rng: SimRng");

        // One machine + one RNG is fine; a Vec of machines is not.
        let one = parsed("crates/txn/src/designs.rs", "struct W { m: Machine, rng: SimRng }");
        let mut out = Vec::new();
        rule_r8_file(&cfg, &one, &mut out);
        assert!(out.is_empty(), "{out:?}");
        let many = parsed("crates/txn/src/designs.rs", "struct W { ms: Vec<Machine>, rng: SimRng }");
        let mut out = Vec::new();
        rule_r8_file(&cfg, &many, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn r9_uncovered_counters_are_flagged() {
        let rnic = parsed(
            "crates/rnic/src/endpoint.rs",
            "impl E { pub fn publish_metrics(&self, m: &mut M, prefix: &str) {\n\
             m.set(&format!(\"{prefix}.doorbells\"), self.d);\n\
             m.set(&format!(\"{prefix}.wqes\"), self.w);\n } }",
        );
        let metrics = parsed(
            "crates/metrics/src/report.rs",
            "impl R { fn validate_rnic(&self) { let w = self.sum(\".wqes\"); } }",
        );
        let v = run_cross(vec![rnic, metrics], rule_r9);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].token, "doorbells");
        assert_eq!(v[0].path, "crates/rnic/src/endpoint.rs");
    }

    #[test]
    fn r9_covered_counters_pass_and_error_strings_do_not_cover() {
        let rnic = parsed(
            "crates/rnic/src/endpoint.rs",
            "impl E { pub fn publish_metrics(&self, m: &mut M, p: &str) {\n\
             m.set(&format!(\"{p}.cqes\"), self.c);\n } }",
        );
        // An error-message literal mentioning the counter does NOT count as
        // an identity; a suffix literal does.
        let vague = parsed(
            "crates/metrics/src/report.rs",
            "impl R { fn validate_x(&self) { let e = \"too many cqes in flight\"; } }",
        );
        let v = run_cross(vec![rnic, vague], rule_r9);
        assert_eq!(v.len(), 1, "prose must not satisfy coverage: {v:?}");

        let exact = parsed(
            "crates/metrics/src/report.rs",
            "impl R { fn validate_rnic(&self) { let c = self.sum(\".cqes\"); } }",
        );
        let rnic2 = parsed(
            "crates/rnic/src/endpoint.rs",
            "impl E { pub fn publish_metrics(&self, m: &mut M, p: &str) {\n\
             m.set(&format!(\"{p}.cqes\"), self.c);\n } }",
        );
        let v = run_cross(vec![rnic2, exact], rule_r9);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r9_scans_the_metrics_crate_publisher_too() {
        // The event-core summary publishes from the metrics crate itself;
        // its counters need identity coverage like any stats crate's.
        let metrics = parsed(
            "crates/metrics/src/event_core.rs",
            "impl S { pub fn publish_metrics(&self, m: &mut M, p: &str) {\n\
             m.set(&format!(\"{p}.dwell_ps\"), self.d);\n } }\n\
             fn validate_event_core() { let _ = \".enqueued\"; }",
        );
        let v = run_cross(vec![metrics], rule_r9);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].token, "dwell_ps");
        assert_eq!(v[0].path, "crates/metrics/src/event_core.rs");
    }

    #[test]
    fn r10_scope_mirrors_need_validate_scopes_specifically() {
        // `scope.count` is covered by a generic validate_* fn — enough for
        // R9, but R10 demands validate_scopes itself.
        let publisher = parsed(
            "crates/metrics/src/scope.rs",
            "impl S { pub fn publish_metrics(&self, m: &mut M) {\n\
             m.set(\"scope.count\", self.n);\n\
             m.set(\"hot.observed\", self.o);\n } }",
        );
        let elsewhere = parsed(
            "crates/metrics/src/report.rs",
            "impl R { fn validate_other(&self) { let c = self.counter(\"scope.count\"); } }",
        );
        let v = run_cross(vec![publisher, elsewhere], rule_r10);
        let tokens: Vec<&str> = v.iter().map(|v| v.token.as_str()).collect();
        assert!(tokens.contains(&"scope.count"), "generic coverage must not satisfy R10: {v:?}");
        assert!(tokens.contains(&"hot.observed"), "{v:?}");
        assert_eq!(v.len(), 2, "{v:?}");

        // The same mirrors mentioned inside validate_scopes pass.
        let publisher = parsed(
            "crates/metrics/src/scope.rs",
            "impl S { pub fn publish_metrics(&self, m: &mut M) {\n\
             m.set(\"scope.count\", self.n);\n\
             m.set(\"hot.observed\", self.o);\n } }",
        );
        let guarded = parsed(
            "crates/metrics/src/report.rs",
            "impl R { fn validate_scopes(&self) { let _ = (\"scope.count\", \"hot.observed\"); } }",
        );
        let v = run_cross(vec![publisher, guarded], rule_r10);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r10_ignores_unprefixed_counters() {
        // Counters outside the scope./hot. namespaces are R9's business,
        // never R10's — even when completely unguarded.
        let publisher = parsed(
            "crates/rnic/src/endpoint.rs",
            "impl E { pub fn publish_metrics(&self, m: &mut M, p: &str) {\n\
             m.set(&format!(\"{p}.doorbells\"), self.d);\n } }",
        );
        let v = run_cross(vec![publisher], rule_r10);
        assert!(v.is_empty(), "unprefixed counters are out of scope: {v:?}");
    }

    #[test]
    fn allowlist_parses_and_rejects_garbage() {
        let entries =
            parse_allowlist("# comment\n\nR1 crates/des/src/detmap.rs HashMap  # backing store\n").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "R1");
        assert!(parse_allowlist("R1 only-two").is_err());
    }

    #[test]
    fn allowlist_entries_without_a_reason_are_errors() {
        let err = parse_allowlist("R1 crates/des/src/detmap.rs HashMap\n").unwrap_err();
        assert!(err.contains("no `# reason`"), "{err}");
        let err = parse_allowlist("R1 crates/des/src/detmap.rs HashMap  #   \n").unwrap_err();
        assert!(err.contains("no `# reason`"), "{err}");
    }
}
