//! A log-structured persistent key-value store over (simulated) NVM.
//!
//! Stands in for RocksDB in the evaluation (Sec. VI-C): a volatile memtable
//! in front of a durable redo log. A write is durable once its log record is
//! in the NVM-backed log; crash recovery replays the durable prefix. Values
//! are addressed by key and stored with the offset-in-NVM discipline
//! HyperLoop uses.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One durable redo-log record: a whole transaction's writes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Transaction id (monotonic per chain).
    pub txn_id: u64,
    /// `(key, value)` writes, applied atomically.
    pub writes: Vec<(u64, Vec<u8>)>,
}

impl WalRecord {
    /// Serialized size: the paper's log format — one count byte plus
    /// `(data, len, offset)` tuples.
    pub fn log_bytes(&self) -> u64 {
        1 + self.writes.iter().map(|(_, v)| v.len() as u64 + 4 + 8).sum::<u64>()
    }
}

/// The persistent store: memtable + durable redo log.
#[derive(Debug, Clone, Default)]
pub struct PersistentStore {
    memtable: BTreeMap<u64, Vec<u8>>,
    /// The simulated NVM contents: records up to `durable` survive a crash.
    wal: Vec<WalRecord>,
    durable: usize,
}

impl PersistentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PersistentStore::default()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.memtable.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.memtable.is_empty()
    }

    /// Reads a key from the memtable.
    pub fn get(&self, key: u64) -> Option<&[u8]> {
        self.memtable.get(&key).map(|v| v.as_slice())
    }

    /// Appends a transaction's record to the redo log (not yet durable) and
    /// applies it to the memtable. Returns the record's log index.
    pub fn apply(&mut self, record: WalRecord) -> usize {
        for (k, v) in &record.writes {
            self.memtable.insert(*k, v.clone());
        }
        self.wal.push(record);
        self.wal.len() - 1
    }

    /// Bulk-appends `records` to the log, applies them to the memtable and
    /// marks them durable — observationally identical to `apply` +
    /// `persist_through` per record, but bulk-building the memtable (one
    /// sort + build instead of per-key tree inserts) when the store is
    /// fresh. Used to pre-load benchmark worlds.
    pub fn preload(&mut self, records: Vec<WalRecord>) {
        if self.memtable.is_empty() {
            self.memtable =
                records.iter().flat_map(|r| r.writes.iter().map(|(k, v)| (*k, v.clone()))).collect();
        } else {
            for r in &records {
                for (k, v) in &r.writes {
                    self.memtable.insert(*k, v.clone());
                }
            }
        }
        self.wal.extend(records);
        self.durable = self.wal.len();
    }

    /// Marks the log durable through `index` (the NVM write completed —
    /// ADR guarantees persistence once it reaches the DIMM's write buffer).
    pub fn persist_through(&mut self, index: usize) {
        self.durable = self.durable.max(index + 1);
    }

    /// Number of durable log records.
    pub fn durable_len(&self) -> usize {
        self.durable
    }

    /// Total log records (durable + volatile tail).
    pub fn log_len(&self) -> usize {
        self.wal.len()
    }

    /// The durable log prefix.
    pub fn durable_log(&self) -> &[WalRecord] {
        &self.wal[..self.durable]
    }

    /// Simulates a crash: the memtable and the volatile log tail are lost.
    pub fn crash(&mut self) {
        self.memtable.clear();
        self.wal.truncate(self.durable);
    }

    /// Recovers after a crash by replaying the durable log.
    pub fn recover(&mut self) {
        self.memtable.clear();
        for rec in &self.wal {
            for (k, v) in &rec.writes {
                self.memtable.insert(*k, v.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, kvs: &[(u64, u8)]) -> WalRecord {
        WalRecord { txn_id: id, writes: kvs.iter().map(|&(k, b)| (k, vec![b; 8])).collect() }
    }

    #[test]
    fn apply_and_get() {
        let mut s = PersistentStore::new();
        s.apply(rec(1, &[(10, 0xAA), (11, 0xBB)]));
        assert_eq!(s.get(10).unwrap(), &[0xAA; 8]);
        assert_eq!(s.get(11).unwrap(), &[0xBB; 8]);
        assert_eq!(s.len(), 2);
        assert!(s.get(99).is_none());
    }

    #[test]
    fn log_bytes_match_paper_format() {
        let r = rec(1, &[(1, 0), (2, 0)]);
        // 1 count byte + 2 x (8 bytes data + 4 len + 8 offset).
        assert_eq!(r.log_bytes(), 1 + 2 * 20);
    }

    #[test]
    fn crash_loses_volatile_tail_only() {
        let mut s = PersistentStore::new();
        let i0 = s.apply(rec(1, &[(1, 0x01)]));
        s.persist_through(i0);
        s.apply(rec(2, &[(2, 0x02)])); // never persisted
        s.crash();
        assert_eq!(s.log_len(), 1);
        assert!(s.get(1).is_none(), "memtable lost in the crash");
        s.recover();
        assert_eq!(s.get(1).unwrap(), &[0x01; 8]);
        assert!(s.get(2).is_none(), "unpersisted txn must not reappear");
    }

    #[test]
    fn recovery_applies_log_in_order() {
        let mut s = PersistentStore::new();
        let a = s.apply(rec(1, &[(7, 0x01)]));
        s.persist_through(a);
        let b = s.apply(rec(2, &[(7, 0x02)])); // overwrites key 7
        s.persist_through(b);
        s.crash();
        s.recover();
        assert_eq!(s.get(7).unwrap(), &[0x02; 8], "later record must win");
    }

    #[test]
    fn persist_through_is_monotonic() {
        let mut s = PersistentStore::new();
        let a = s.apply(rec(1, &[(1, 1)]));
        let b = s.apply(rec(2, &[(2, 2)]));
        s.persist_through(b);
        s.persist_through(a); // regress attempt
        assert_eq!(s.durable_len(), 2);
        assert_eq!(s.durable_log().len(), 2);
    }

    #[test]
    fn empty_store_behaviour() {
        let mut s = PersistentStore::new();
        assert!(s.is_empty());
        s.crash();
        s.recover();
        assert!(s.is_empty());
    }
}
