//! Negative fixture for `cargo xtask analyze`: a crate breaking R6 — a
//! deprecated runner shim whose note forgets to route callers to
//! `SimBuilder`. Never compiled — scanned by xtask/tests.

#![forbid(unsafe_code)]

/// A legacy entry point with an unhelpful deprecation note: trips R6.
#[deprecated(note = "old entry point")]
pub fn run_txn_report() -> u64 {
    0
}

/// A properly routed shim. The note passes R6; the live call site over in
/// `caller.rs` still trips the second half of the rule.
#[deprecated(note = "use SimBuilder with Design::txn_rambda_tx")]
pub fn run_txn_report_traced() -> u64 {
    1
}
