//! LLC / DDIO / TPH routing model (Fig. 5 and Fig. 6 of the paper).
//!
//! Inbound device DMA is routed either into the LLC's DDIO ways or to main
//! memory. The paper's Fig. 5 experiment establishes the routing rule on real
//! hardware; we reproduce it exactly:
//!
//! * data goes to the **LLC** if global DDIO is enabled **or** the PCIe
//!   packet carries the TPH bit;
//! * otherwise it goes to **memory**, where a DMA write costs both a read
//!   (ownership/merge) and a write on the DRAM channels.

use serde::{Deserialize, Serialize};

/// Where an inbound DMA landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DmaRoute {
    /// Injected into the LLC DDIO ways (no memory-channel traffic now).
    Llc,
    /// Written to main memory (read-for-ownership + write traffic).
    Memory,
}

/// The last-level cache from the I/O subsystem's point of view.
///
/// Tracks the bytes injected by DDIO and how much of the DDIO working set
/// overflows the DDIO ways (overflow is written back to memory — or to NVM
/// with write amplification, handled by
/// [`MemorySystem`](crate::MemorySystem)).
#[derive(Debug, Clone)]
pub struct Llc {
    ddio_enabled: bool,
    ddio_capacity: u64,
    injected_bytes: u64,
    resident_bytes: u64,
}

impl Llc {
    /// Creates an LLC model with the given DDIO-way capacity in bytes.
    pub fn new(ddio_enabled: bool, ddio_capacity: u64) -> Self {
        Llc { ddio_enabled, ddio_capacity, injected_bytes: 0, resident_bytes: 0 }
    }

    /// Whether global DDIO is enabled (the BIOS-level knob).
    pub fn ddio_enabled(&self) -> bool {
        self.ddio_enabled
    }

    /// Enables or disables global DDIO (guideline 1 in Sec. III-D is to
    /// disable it and use TPH per packet instead).
    pub fn set_ddio_enabled(&mut self, enabled: bool) {
        self.ddio_enabled = enabled;
    }

    /// Resolves the routing decision for one inbound PCIe write.
    ///
    /// `tph` is the TLP-processing-hint bit of the packet. This is the exact
    /// rule measured in Fig. 5: either knob suffices to steer the data into
    /// the cache.
    pub fn route(&self, tph: bool) -> DmaRoute {
        if self.ddio_enabled || tph {
            DmaRoute::Llc
        } else {
            DmaRoute::Memory
        }
    }

    /// Records an injection of `bytes` into the DDIO ways and returns how
    /// many bytes *overflowed* (were evicted to the memory side because the
    /// DDIO working set exceeds the DDIO-way capacity).
    ///
    /// The model is a running-occupancy estimate: consumption by cores is
    /// assumed to keep up (the paper's workloads poll the rings), so only
    /// working sets larger than the DDIO ways spill.
    pub fn inject(&mut self, bytes: u64) -> u64 {
        self.injected_bytes = self.injected_bytes.saturating_add(bytes);
        let new_resident = self.resident_bytes.saturating_add(bytes);
        if new_resident > self.ddio_capacity {
            let spill = new_resident - self.ddio_capacity;
            self.resident_bytes = self.ddio_capacity;
            spill
        } else {
            self.resident_bytes = new_resident;
            0
        }
    }

    /// Marks `bytes` as consumed by a core (frees DDIO-way occupancy).
    pub fn consume(&mut self, bytes: u64) {
        self.resident_bytes = self.resident_bytes.saturating_sub(bytes);
    }

    /// Total bytes ever injected through DDIO/TPH.
    pub fn injected_bytes(&self) -> u64 {
        self.injected_bytes
    }

    /// Current DDIO-way occupancy estimate.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Expected LLC hit probability for a core accessing a working set of
    /// `footprint` bytes uniformly, given `llc_capacity` bytes of cache.
    ///
    /// A standard fully-associative approximation: `min(1, capacity /
    /// footprint)`. The evaluation's KVS footprints (≈7 GB) make this ≈0 for
    /// both CPU and FPGA caches, matching the paper's observation that the
    /// distribution does not help CPU/Rambda.
    pub fn uniform_hit_rate(llc_capacity: u64, footprint: u64) -> f64 {
        if footprint == 0 {
            1.0
        } else {
            (llc_capacity as f64 / footprint as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_matches_fig5() {
        // (ddio, tph) -> route; only off/off goes to memory.
        let cases = [
            (true, true, DmaRoute::Llc),
            (true, false, DmaRoute::Llc),
            (false, true, DmaRoute::Llc),
            (false, false, DmaRoute::Memory),
        ];
        for (ddio, tph, want) in cases {
            let llc = Llc::new(ddio, 1 << 20);
            assert_eq!(llc.route(tph), want, "ddio={ddio} tph={tph}");
        }
    }

    #[test]
    fn injection_spills_beyond_ddio_ways() {
        let mut llc = Llc::new(true, 1000);
        assert_eq!(llc.inject(600), 0);
        assert_eq!(llc.inject(600), 200);
        assert_eq!(llc.resident_bytes(), 1000);
        llc.consume(500);
        assert_eq!(llc.resident_bytes(), 500);
        assert_eq!(llc.inject(400), 0);
        assert_eq!(llc.injected_bytes(), 1600);
    }

    #[test]
    fn consume_saturates() {
        let mut llc = Llc::new(true, 100);
        llc.inject(50);
        llc.consume(500);
        assert_eq!(llc.resident_bytes(), 0);
    }

    #[test]
    fn uniform_hit_rate_bounds() {
        assert_eq!(Llc::uniform_hit_rate(100, 0), 1.0);
        assert_eq!(Llc::uniform_hit_rate(100, 50), 1.0);
        assert!((Llc::uniform_hit_rate(100, 200) - 0.5).abs() < 1e-12);
        assert!(Llc::uniform_hit_rate(27_500_000, 7_000_000_000) < 0.005);
    }

    #[test]
    fn ddio_toggle() {
        let mut llc = Llc::new(false, 10);
        assert_eq!(llc.route(false), DmaRoute::Memory);
        llc.set_ddio_enabled(true);
        assert!(llc.ddio_enabled());
        assert_eq!(llc.route(false), DmaRoute::Llc);
    }
}
