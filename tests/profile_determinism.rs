//! The deterministic profiler is a pure function of the seed: same-seed
//! runs render byte-identical profile JSON (mirroring `determinism.rs` for
//! reports), the event-core identities validate, the measured parallelism
//! ratio is exploitable (> 1.0) on the paper's two headline designs, and
//! profiling never perturbs the simulated run it observes.

use rambda::{Design, SimBuilder, Testbed};
use rambda_accel::DataLocation;
use rambda_kvs::{KvsDesigns, KvsParams};
use rambda_metrics::RunReport;
use rambda_trace::{profile_json, Tracer};
use rambda_txn::{TxnDesigns, TxnParams};
use rambda_workloads::TxnSpec;

/// Runs `design` once under the profiler and renders its profile JSON.
fn profiled(design: Design) -> (RunReport, String, f64) {
    let tb = Testbed::default();
    let mut tracer = Tracer::flight_recorder();
    let report = SimBuilder::new(design).config(&tb).tracer(&mut tracer).profile().run();
    report.validate().expect("profiled report validates its event-core identities");
    tracer.cross_validate(&report).expect("trace agrees with the report");
    let ratio = tracer.critical_path().expect("enabled tracer accumulates the critical path");
    let json = profile_json(&report, &tracer);
    (report, json, ratio.parallelism_ratio())
}

fn kvs_design() -> Design {
    Design::kvs_rambda(KvsParams::quick(), DataLocation::HostDram)
}

fn txn_design() -> Design {
    Design::txn_rambda_tx(TxnParams::quick(TxnSpec::read_write(64)))
}

#[test]
fn same_seed_profiles_are_byte_identical() {
    for design in [kvs_design, txn_design] {
        let (_, a, _) = profiled(design());
        let (_, b, _) = profiled(design());
        assert_eq!(a, b, "same-seed profile JSON must be byte-identical");
    }
}

#[test]
fn headline_designs_show_exploitable_parallelism() {
    for (name, design) in [("kvs.rambda", kvs_design()), ("txn.rambda_tx", txn_design())] {
        let (report, json, ratio) = profiled(design);
        assert!(
            ratio > 1.0 && ratio.is_finite(),
            "{name}: parallelism ratio {ratio} must be finite and > 1.0"
        );
        let ec = report.event_core.as_ref().expect("profiled report carries event-core telemetry");
        assert!(ec.dispatched > 0, "{name}: the scheduler dispatched work");
        assert!(json.contains("\"event_core\""), "{name}: profile embeds the event-core section");
        assert!(json.contains("\"critical_path\""), "{name}: profile embeds the critical path");
        // Per-machine-pair lookahead bounds (the conservative parallel-DES
        // synchronization horizon) are present and positive.
        let lookahead: Vec<u64> = report
            .resources
            .counters()
            .filter(|(n, _)| n.contains(".lookahead.") && n.ends_with(".min_ps"))
            .map(|(_, v)| v)
            .collect();
        assert!(!lookahead.is_empty(), "{name}: lookahead bounds are published");
        assert!(lookahead.iter().all(|&ps| ps > 0), "{name}: lookahead bounds are positive");
    }
}

#[test]
fn profiling_never_perturbs_the_run_it_observes() {
    let tb = Testbed::default();
    let plain = SimBuilder::new(kvs_design()).config(&tb).run();
    let (profiled_report, _, _) = profiled(kvs_design());
    assert_eq!(plain.completed, profiled_report.completed);
    assert_eq!(plain.elapsed_ps, profiled_report.elapsed_ps);
    assert_eq!(plain.latency.p99_ps, profiled_report.latency.p99_ps);
    // The unprofiled report stays exactly as before the profiler existed:
    // no event-core section, no lookahead counters — goldens are safe.
    assert!(plain.event_core.is_none());
    assert!(plain.resources.counters().all(|(n, _)| !n.contains(".lookahead.")));
    assert!(plain.resources.counters().all(|(n, _)| !n.starts_with("event_core.")));
}
