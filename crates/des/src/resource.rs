//! FIFO resources with busy-until semantics.
//!
//! The simulation style used throughout the workspace is *time-advancing
//! tokens*: a request carries its current timestamp through a pipeline of
//! resources; each resource returns when the request could actually start
//! (and advances its own busy-until bookkeeping). Queueing delay — and hence
//! tail latency under load — falls out of the bookkeeping.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimTime, Span};

/// Unit-count threshold below which [`Server`] tracks per-unit busy-until
/// times in a flat vector (linear min-scan) instead of a binary min-heap.
/// Most servers in the workspace are small (1–16 cores); the scan is
/// branch-predictable and allocation-free there, while large servers (e.g.
/// the APU's 256 outstanding-request slots) need the heap's O(log n).
const LINEAR_SCAN_MAX_UNITS: usize = 16;

/// Per-unit busy-until bookkeeping, sized to the unit count.
///
/// Both variants are observationally identical: `acquire` always picks *a*
/// unit with the minimum busy-until time, and the returned start depends
/// only on that minimum value, never on which unit held it.
#[derive(Debug, Clone)]
enum FreeList {
    /// Unsorted busy-until times, min found by linear scan.
    Flat(Vec<SimTime>),
    /// Min-heap of busy-until times.
    Heap(BinaryHeap<Reverse<SimTime>>),
}

/// A `k`-way FIFO server: `k` identical units, each serving one request at a
/// time (CPU cores, APU outstanding-request slots, ARM cores, ...).
///
/// ```
/// use rambda_des::{Server, SimTime, Span};
/// let mut cores = Server::new(2);
/// let s = Span::from_ns(100);
/// assert_eq!(cores.acquire(SimTime::ZERO, s), SimTime::ZERO);
/// assert_eq!(cores.acquire(SimTime::ZERO, s), SimTime::ZERO);
/// // Both units busy until 100ns; third request queues.
/// assert_eq!(cores.acquire(SimTime::ZERO, s), SimTime::from_ns(100));
/// ```
#[derive(Debug, Clone)]
pub struct Server {
    free: FreeList,
    units: usize,
    acquisitions: u64,
    busy_ps: u64,
    wait_ps: u64,
}

impl Server {
    /// Creates a server with `units` parallel units.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn new(units: usize) -> Self {
        assert!(units > 0, "a Server needs at least one unit");
        let free = if units <= LINEAR_SCAN_MAX_UNITS {
            FreeList::Flat(vec![SimTime::ZERO; units])
        } else {
            FreeList::Heap((0..units).map(|_| Reverse(SimTime::ZERO)).collect())
        };
        Server { free, units, acquisitions: 0, busy_ps: 0, wait_ps: 0 }
    }

    /// Number of parallel units.
    pub fn units(&self) -> usize {
        self.units
    }

    /// Acquires a unit at or after `at`, holding it for `hold`.
    ///
    /// Returns the service *start* time (`>= at`); the caller computes its
    /// own completion as `start + hold`.
    pub fn acquire(&mut self, at: SimTime, hold: Span) -> SimTime {
        let start;
        match &mut self.free {
            FreeList::Flat(free) => {
                let mut best = 0;
                for (i, &t) in free.iter().enumerate().skip(1) {
                    if t < free[best] {
                        best = i;
                    }
                }
                start = at.max(free[best]);
                free[best] = start + hold;
            }
            FreeList::Heap(free) => {
                let Reverse(free_at) = free.pop().expect("server has at least one unit");
                start = at.max(free_at);
                free.push(Reverse(start + hold));
            }
        }
        self.acquisitions += 1;
        self.busy_ps = self.busy_ps.saturating_add(hold.as_ps());
        self.wait_ps = self.wait_ps.saturating_add((start - at).as_ps());
        start
    }

    /// The earliest instant any unit is free.
    pub fn earliest_free(&self) -> SimTime {
        match &self.free {
            FreeList::Flat(free) => free.iter().copied().min().unwrap_or(SimTime::ZERO),
            FreeList::Heap(free) => free.peek().map(|Reverse(t)| *t).unwrap_or(SimTime::ZERO),
        }
    }

    /// Number of successful [`acquire`](Self::acquire) calls.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Aggregate hold time across all acquisitions (unit-seconds of work).
    pub fn busy_time(&self) -> Span {
        Span::from_ps(self.busy_ps)
    }

    /// Aggregate queueing delay suffered by acquirers (start − arrival).
    pub fn queue_wait(&self) -> Span {
        Span::from_ps(self.wait_ps)
    }

    /// Resets all units to free-at-zero and clears the counters.
    pub fn reset(&mut self) {
        match &mut self.free {
            FreeList::Flat(free) => free.fill(SimTime::ZERO),
            FreeList::Heap(free) => {
                let units = self.units;
                free.clear();
                free.extend((0..units).map(|_| Reverse(SimTime::ZERO)));
            }
        }
        self.acquisitions = 0;
        self.busy_ps = 0;
        self.wait_ps = 0;
    }
}

/// Result of pushing bytes through a [`Link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// When the last byte has left the sender (sender may continue then).
    pub depart: SimTime,
    /// When the last byte arrives at the receiver (depart + propagation).
    pub arrive: SimTime,
}

/// A serializing bandwidth resource with propagation latency: an Ethernet
/// port, a PCIe link, a UPI/CXL hop, or an aggregate DRAM channel.
///
/// Transfers serialize in FIFO order at `bytes_per_sec`; each transfer then
/// takes an extra `latency` to propagate.
///
/// ```
/// use rambda_des::{Link, SimTime, Span};
/// // 1 GB/s, 100ns propagation: 1000 bytes take 1us to serialize.
/// let mut l = Link::new(1.0e9, Span::from_ns(100));
/// let t = l.transfer(SimTime::ZERO, 1000);
/// assert_eq!(t.depart, SimTime::from_ns(1000));
/// assert_eq!(t.arrive, SimTime::from_ns(1100));
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    bytes_per_sec: f64,
    latency: Span,
    /// Fluid-queue state: outstanding bytes not yet drained at `last_time`.
    backlog_bytes: f64,
    last_time: SimTime,
    bytes_moved: u64,
    transfers: u64,
    busy_ps: u64,
    queue_ps: u64,
}

impl Link {
    /// Creates a link with the given bandwidth (bytes/second) and
    /// propagation latency.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    pub fn new(bytes_per_sec: f64, latency: Span) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "link bandwidth must be positive, got {bytes_per_sec}"
        );
        Link {
            bytes_per_sec,
            latency,
            backlog_bytes: 0.0,
            last_time: SimTime::ZERO,
            bytes_moved: 0,
            transfers: 0,
            busy_ps: 0,
            queue_ps: 0,
        }
    }

    /// The configured bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// The configured propagation latency.
    pub fn latency(&self) -> Span {
        self.latency
    }

    /// Serialization time for `bytes` on this link (no queueing).
    pub fn serialization(&self, bytes: u64) -> Span {
        Span::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Pushes `bytes` through the link at or after `at`.
    ///
    /// The link is a *fluid queue*: backlog drains at the configured
    /// bandwidth; a transfer waits behind the backlog present when it
    /// arrives. Unlike a strict busy-until resource, this tolerates
    /// reservations arriving out of timestamp order (concurrent in-flight
    /// requests simulated one after another), which only share bandwidth
    /// rather than strictly serializing.
    pub fn transfer(&mut self, at: SimTime, bytes: u64) -> Transfer {
        // Drain the backlog over the elapsed simulated time.
        if at > self.last_time {
            let elapsed = (at - self.last_time).as_secs_f64();
            self.backlog_bytes = (self.backlog_bytes - elapsed * self.bytes_per_sec).max(0.0);
            self.last_time = at;
        }
        let queue_delay = Span::from_secs_f64(self.backlog_bytes / self.bytes_per_sec);
        self.backlog_bytes += bytes as f64;
        self.bytes_moved = self.bytes_moved.saturating_add(bytes);
        self.transfers += 1;
        self.busy_ps = self.busy_ps.saturating_add(self.serialization(bytes).as_ps());
        self.queue_ps = self.queue_ps.saturating_add(queue_delay.as_ps());
        let depart = at + queue_delay + self.serialization(bytes);
        Transfer { depart, arrive: depart + self.latency }
    }

    /// Total bytes ever pushed through the link.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Number of transfers pushed through the link.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Aggregate serialization time across all transfers.
    pub fn busy_time(&self) -> Span {
        Span::from_ps(self.busy_ps)
    }

    /// Aggregate queueing delay transfers spent waiting behind the backlog.
    pub fn queue_delay_total(&self) -> Span {
        Span::from_ps(self.queue_ps)
    }

    /// Average consumed bandwidth (bytes/sec) over `[SimTime::ZERO, now]`.
    pub fn consumed_bandwidth(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes_moved as f64 / secs
        }
    }

    /// The instant the current backlog fully drains.
    pub fn next_free(&self) -> SimTime {
        self.last_time + Span::from_secs_f64(self.backlog_bytes / self.bytes_per_sec)
    }

    /// Resets occupancy and all counters.
    pub fn reset(&mut self) {
        self.backlog_bytes = 0.0;
        self.last_time = SimTime::ZERO;
        self.bytes_moved = 0;
        self.transfers = 0;
        self.busy_ps = 0;
        self.queue_ps = 0;
    }
}

/// A fixed per-operation issue-rate limiter.
///
/// Models resources whose constraint is *operations per second* rather than
/// bytes per second — e.g. the Rambda prototype's 400 MHz soft coherence
/// controller, which issues memory requests serially (Sec. V of the paper).
///
/// ```
/// use rambda_des::{Throttle, SimTime, Span};
/// let mut t = Throttle::new(Span::from_ns(10));
/// assert_eq!(t.admit(SimTime::ZERO), SimTime::ZERO);
/// assert_eq!(t.admit(SimTime::ZERO), SimTime::from_ns(10));
/// ```
#[derive(Debug, Clone)]
pub struct Throttle {
    gap: Span,
    /// Fluid-queue state: operations admitted but not yet drained.
    backlog_ops: f64,
    last_time: SimTime,
    admitted: u64,
    delay_ps: u64,
}

impl Throttle {
    /// Creates a throttle admitting one operation per `gap`.
    pub fn new(gap: Span) -> Self {
        Throttle { gap, backlog_ops: 0.0, last_time: SimTime::ZERO, admitted: 0, delay_ps: 0 }
    }

    /// Creates a throttle from an operations-per-second rate.
    ///
    /// # Panics
    ///
    /// Panics if `ops_per_sec` is not strictly positive and finite.
    pub fn from_rate(ops_per_sec: f64) -> Self {
        assert!(
            ops_per_sec.is_finite() && ops_per_sec > 0.0,
            "throttle rate must be positive, got {ops_per_sec}"
        );
        Throttle::new(Span::from_secs_f64(1.0 / ops_per_sec))
    }

    /// The minimum gap between admitted operations.
    pub fn gap(&self) -> Span {
        self.gap
    }

    /// Admits one operation at or after `at`; returns the admit time.
    ///
    /// Like [`Link`], the throttle is a fluid queue tolerant of
    /// out-of-timestamp-order admissions.
    pub fn admit(&mut self, at: SimTime) -> SimTime {
        if self.gap.is_zero() {
            self.admitted += 1;
            return at;
        }
        if at > self.last_time {
            let elapsed = (at - self.last_time).as_secs_f64();
            self.backlog_ops = (self.backlog_ops - elapsed / self.gap.as_secs_f64()).max(0.0);
            self.last_time = at;
        }
        let start = at + self.gap.mul_f64(self.backlog_ops);
        self.backlog_ops += 1.0;
        self.admitted += 1;
        self.delay_ps = self.delay_ps.saturating_add((start - at).as_ps());
        start
    }

    /// Number of operations admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Aggregate admission delay (admit time − arrival) across operations.
    pub fn admit_delay_total(&self) -> Span {
        Span::from_ps(self.delay_ps)
    }

    /// Resets occupancy and the counters.
    pub fn reset(&mut self) {
        self.backlog_ops = 0.0;
        self.last_time = SimTime::ZERO;
        self.admitted = 0;
        self.delay_ps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_queues_in_fifo_order() {
        let mut s = Server::new(1);
        let hold = Span::from_ns(10);
        assert_eq!(s.acquire(SimTime::ZERO, hold), SimTime::ZERO);
        assert_eq!(s.acquire(SimTime::ZERO, hold), SimTime::from_ns(10));
        assert_eq!(s.acquire(SimTime::from_ns(5), hold), SimTime::from_ns(20));
        // Arrival after the backlog drains starts immediately.
        assert_eq!(s.acquire(SimTime::from_ns(100), hold), SimTime::from_ns(100));
    }

    #[test]
    fn server_parallel_units() {
        let mut s = Server::new(3);
        let hold = Span::from_ns(10);
        for _ in 0..3 {
            assert_eq!(s.acquire(SimTime::ZERO, hold), SimTime::ZERO);
        }
        assert_eq!(s.acquire(SimTime::ZERO, hold), SimTime::from_ns(10));
        assert_eq!(s.units(), 3);
    }

    #[test]
    fn server_reset() {
        let mut s = Server::new(1);
        s.acquire(SimTime::ZERO, Span::from_us(10));
        s.reset();
        assert_eq!(s.acquire(SimTime::ZERO, Span::ZERO), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn server_zero_units_panics() {
        let _ = Server::new(0);
    }

    /// Servers above the linear-scan threshold use the heap free list;
    /// behavior must be indistinguishable from the flat variant.
    #[test]
    fn large_server_matches_small_semantics() {
        let units = 256;
        let mut s = Server::new(units);
        let hold = Span::from_ns(10);
        for _ in 0..units {
            assert_eq!(s.acquire(SimTime::ZERO, hold), SimTime::ZERO);
        }
        // All units busy until 10ns: the next wave queues behind them.
        for _ in 0..units {
            assert_eq!(s.acquire(SimTime::ZERO, hold), SimTime::from_ns(10));
        }
        assert_eq!(s.earliest_free(), SimTime::from_ns(20));
        s.reset();
        assert_eq!(s.earliest_free(), SimTime::ZERO);
        assert_eq!(s.acquire(SimTime::ZERO, Span::ZERO), SimTime::ZERO);
    }

    #[test]
    fn link_serializes_back_to_back() {
        let mut l = Link::new(1.0e9, Span::from_ns(50));
        let a = l.transfer(SimTime::ZERO, 500);
        let b = l.transfer(SimTime::ZERO, 500);
        assert_eq!(a.depart, SimTime::from_ns(500));
        assert_eq!(b.depart, SimTime::from_ns(1000));
        assert_eq!(b.arrive, SimTime::from_ns(1050));
        assert_eq!(l.bytes_moved(), 1000);
    }

    #[test]
    fn link_idle_gap_is_not_charged() {
        let mut l = Link::new(1.0e9, Span::ZERO);
        l.transfer(SimTime::ZERO, 100);
        let t = l.transfer(SimTime::from_us(5), 100);
        assert_eq!(t.depart, SimTime::from_us(5) + Span::from_ns(100));
    }

    #[test]
    fn link_consumed_bandwidth() {
        let mut l = Link::new(1.0e9, Span::ZERO);
        l.transfer(SimTime::ZERO, 1_000_000);
        let bw = l.consumed_bandwidth(SimTime::from_us(1_000));
        assert!((bw - 1.0e9).abs() / 1.0e9 < 1e-9, "bw={bw}");
        assert_eq!(l.consumed_bandwidth(SimTime::ZERO), 0.0);
    }

    #[test]
    fn throttle_enforces_gap() {
        let mut t = Throttle::from_rate(1.0e8); // one per 10ns
        assert_eq!(t.gap(), Span::from_ns(10));
        assert_eq!(t.admit(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(t.admit(SimTime::from_ns(3)), SimTime::from_ns(10));
        assert_eq!(t.admit(SimTime::from_ns(40)), SimTime::from_ns(40));
        assert_eq!(t.admitted(), 3);
    }

    #[test]
    fn server_counts_busy_and_wait() {
        let mut s = Server::new(1);
        let hold = Span::from_ns(10);
        s.acquire(SimTime::ZERO, hold); // starts at 0, no wait
        s.acquire(SimTime::ZERO, hold); // starts at 10, waits 10
        assert_eq!(s.acquisitions(), 2);
        assert_eq!(s.busy_time(), Span::from_ns(20));
        assert_eq!(s.queue_wait(), Span::from_ns(10));
        s.reset();
        assert_eq!(s.acquisitions(), 0);
        assert_eq!(s.busy_time(), Span::ZERO);
        assert_eq!(s.queue_wait(), Span::ZERO);
    }

    #[test]
    fn link_counts_transfers_and_queueing() {
        let mut l = Link::new(1.0e9, Span::ZERO);
        l.transfer(SimTime::ZERO, 1000); // 1us serialization, no queue
        l.transfer(SimTime::ZERO, 1000); // queues behind the first
        assert_eq!(l.transfers(), 2);
        assert_eq!(l.busy_time(), Span::from_us(2));
        assert_eq!(l.queue_delay_total(), Span::from_us(1));
        l.reset();
        assert_eq!(l.transfers(), 0);
        assert_eq!(l.busy_time(), Span::ZERO);
    }

    #[test]
    fn throttle_counts_admit_delay() {
        let mut t = Throttle::new(Span::from_ns(10));
        t.admit(SimTime::ZERO); // immediate
        t.admit(SimTime::ZERO); // delayed 10ns
        assert_eq!(t.admit_delay_total(), Span::from_ns(10));
        t.reset();
        assert_eq!(t.admit_delay_total(), Span::ZERO);
    }

    #[test]
    fn zero_gap_throttle_has_no_delay() {
        let mut t = Throttle::new(Span::ZERO);
        t.admit(SimTime::ZERO);
        t.admit(SimTime::ZERO);
        assert_eq!(t.admitted(), 2);
        assert_eq!(t.admit_delay_total(), Span::ZERO);
    }

    #[test]
    fn reset_clears_state() {
        let mut l = Link::new(1.0e9, Span::ZERO);
        l.transfer(SimTime::ZERO, 100);
        l.reset();
        assert_eq!(l.bytes_moved(), 0);
        assert_eq!(l.next_free(), SimTime::ZERO);
        let mut l2 = Link::new(1.0e9, Span::ZERO);
        l2.transfer(SimTime::ZERO, 1000);
        assert_eq!(l2.next_free(), SimTime::from_ns(1000));

        let mut th = Throttle::new(Span::from_ns(10));
        th.admit(SimTime::ZERO);
        th.reset();
        assert_eq!(th.admitted(), 0);
    }
}
