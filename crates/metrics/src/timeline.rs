//! Windowed time-series telemetry: what the run looked like *over time*.
//!
//! A [`RunReport`](crate::RunReport) aggregates a whole run into one number
//! per metric; the paper's arguments (Figs. 9–14) are about *curves* —
//! throughput, tail latency and link utilization as the run saturates. The
//! [`Timeline`] collector slices simulated time into fixed windows and
//! records, per window:
//!
//! - a latency [`Histogram`] over the requests that *completed* in the
//!   window (throughput per window is its count over the window width);
//! - cumulative resource-counter snapshots on the window grid, from which
//!   per-window `busy`/`wait` deltas — and hence utilization and queueing
//!   pressure — are derived for every modelled server and link.
//!
//! Two exact identities tie the time series back to the whole-run totals
//! (checked by [`RunReport::validate`](crate::RunReport::validate)):
//!
//! 1. merging the per-window histograms reproduces the whole-run histogram
//!    bucket-for-bucket (same samples, and histogram merge is exact), and
//! 2. each resource's per-window busy/wait deltas telescope to exactly the
//!    final `*.busy_ps` / `*.wait_ps` counter — the busy-time side of the
//!    utilization law `ρ = λ·E[S]` (Little's law applied to the server).
//!
//! Memory is bounded: when a run outgrows `2 × max_windows` live windows
//! the collector merges adjacent windows pairwise and doubles the window
//! width — a deterministic, purely sim-time-driven coalescing, so repeated
//! seeded runs produce byte-identical serialized timelines.

use std::collections::BTreeMap;

use rambda_des::{Histogram, SampleClock, SimTime, Span};

use crate::json::Json;
use crate::report::HistSummary;
use crate::set::MetricSet;

/// Default window width: 50 µs of simulated time, matching the flight
/// recorder's counter-sampling grid.
const DEFAULT_WINDOW_US: u64 = 50;

/// Default bound on the number of windows a finalized timeline keeps.
const DEFAULT_MAX_WINDOWS: usize = 32;

/// Streaming per-window collector, driven purely by simulated time.
///
/// Feed completions with [`Timeline::record`] and cumulative counter
/// snapshots with [`Timeline::due`] + [`Timeline::snapshot`]; call
/// [`Timeline::finalize`] once with the run makespan and the final resource
/// counters to obtain the serializable [`TimelineSummary`].
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Current base-window width; doubles when the run outgrows the bound.
    window: Span,
    /// Finalized timelines hold at most this many (coalesced) windows.
    max_windows: usize,
    /// Per-base-window latency histograms; window `i` covers the interval
    /// `(i·window, (i+1)·window]` (left-open, so a completion landing
    /// exactly on a boundary belongs to the window it closes).
    hists: Vec<Histogram>,
    /// Snapshot grid clock, one tick per base window.
    clock: SampleClock,
    /// Cumulative counter snapshots keyed by grid tick (picoseconds).
    snaps: BTreeMap<u64, BTreeMap<String, u64>>,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new(Span::from_us(DEFAULT_WINDOW_US), DEFAULT_MAX_WINDOWS)
    }
}

impl Timeline {
    /// Creates a collector with the given initial window width and window
    /// bound.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (via [`SampleClock::new`]) or
    /// `max_windows` is zero.
    pub fn new(window: Span, max_windows: usize) -> Self {
        assert!(max_windows > 0, "timeline needs at least one window");
        Timeline {
            window,
            max_windows,
            hists: Vec::new(),
            clock: SampleClock::new(window),
            snaps: BTreeMap::new(),
        }
    }

    /// The current base-window width (doubles as the run grows).
    pub fn window(&self) -> Span {
        self.window
    }

    /// Window index a completion at `done` falls into: windows are
    /// left-open `(i·w, (i+1)·w]`, with time zero belonging to window 0.
    fn index(&self, done: SimTime) -> usize {
        let ps = done.as_ps();
        if ps == 0 {
            0
        } else {
            ((ps - 1) / self.window.as_ps()) as usize
        }
    }

    /// Records one completed request: latency `done - issued`, bucketed by
    /// completion time.
    pub fn record(&mut self, issued: SimTime, done: SimTime) {
        let latency = done.saturating_since(issued);
        let mut idx = self.index(done);
        while idx >= 2 * self.max_windows {
            self.coalesce();
            idx = self.index(done);
        }
        if idx >= self.hists.len() {
            self.hists.resize_with(idx + 1, Histogram::new);
        }
        self.hists[idx].record(latency);
    }

    /// Merges adjacent windows pairwise and doubles the window width.
    /// Snapshots not aligned to the new grid are dropped; the clock is
    /// re-armed on the coarser grid (it re-stamps the latest elapsed grid
    /// point on its next firing, overwriting with newer cumulative values —
    /// harmless, since lookups are stepwise over monotone counters).
    fn coalesce(&mut self) {
        let mut merged = Vec::with_capacity(self.hists.len().div_ceil(2));
        for pair in self.hists.chunks(2) {
            let mut h = pair[0].clone();
            if let Some(second) = pair.get(1) {
                h.merge(second);
            }
            merged.push(h);
        }
        self.hists = merged;
        self.window = Span::from_ps(self.window.as_ps() * 2);
        let w = self.window.as_ps();
        self.snaps.retain(|tick, _| tick % w == 0);
        self.clock = SampleClock::new(self.window);
    }

    /// If a snapshot grid point has elapsed by `now`, returns it (and arms
    /// the next); the caller then builds the counter set and calls
    /// [`Timeline::snapshot`]. Splitting the two lets callers share one
    /// counter-set construction with other sinks (the flight recorder).
    pub fn due(&mut self, now: SimTime) -> Option<SimTime> {
        self.clock.due(now)
    }

    /// Stores the cumulative counters of `set` as the snapshot at `tick`.
    pub fn snapshot(&mut self, tick: SimTime, set: &MetricSet) {
        self.snaps.insert(tick.as_ps(), set.counters().map(|(k, v)| (k.to_string(), v)).collect());
    }

    /// Cumulative value of `counter` at the last snapshot taken at or
    /// before `boundary_ps`, clamped to `[floor, cap]` so the per-window
    /// deltas stay monotone and telescope exactly to the final counter.
    fn stepwise(&self, counter: &str, boundary_ps: u64, floor: u64, cap: u64) -> u64 {
        let v = self
            .snaps
            .range(..=boundary_ps)
            .next_back()
            .and_then(|(_, counters)| counters.get(counter).copied())
            .unwrap_or(0);
        v.clamp(floor, cap)
    }

    /// Folds the collected windows into a bounded, serializable summary.
    ///
    /// `makespan` is the run's last completion time; `finals` are the
    /// resource counters published at the end of the run (the exact values
    /// the per-window delta series must telescope to). Base windows are
    /// grouped so at most `max_windows` remain.
    pub fn finalize(&self, makespan: Span, finals: &MetricSet) -> TimelineSummary {
        let w = self.window.as_ps();
        let n_base = self.hists.len().max(1);
        let group = n_base.div_ceil(self.max_windows).max(1);
        let window_ps = w * group as u64;
        let n = n_base.div_ceil(group);

        let mut windows = Vec::with_capacity(n);
        let mut merged_all = Histogram::new();
        for g in 0..n {
            let mut h = Histogram::new();
            for hist in self.hists.iter().skip(g * group).take(group) {
                h.merge(hist);
            }
            merged_all.merge(&h);
            windows.push(HistSummary::of(&h));
        }

        let mut resources = Vec::new();
        for (name, _) in finals.counters() {
            let Some(base) = name.strip_suffix(".busy_ps") else { continue };
            let units = finals.counter(&format!("{base}.units")).unwrap_or(1).max(1);
            let busy_delta_ps = self.delta_series(&format!("{base}.busy_ps"), n, window_ps, finals);
            let wait = wait_counter(finals, base);
            let wait_delta_ps = match &wait {
                Some(counter) => self.delta_series(counter, n, window_ps, finals),
                None => vec![0; n],
            };
            resources.push(ResourceSeries { name: base.to_string(), units, busy_delta_ps, wait_delta_ps });
        }

        TimelineSummary {
            window_ps,
            elapsed_ps: makespan.as_ps(),
            merged: HistSummary::of(&merged_all),
            windows,
            resources,
        }
    }

    /// Regroups the raw per-base-window histograms onto a coarser grid of
    /// `n` windows of width `window_ps` and summarizes each.
    ///
    /// Used by the scoped-metrics layer to align a scope's windows with the
    /// globally finalized grid: the merge is exact (whole base windows move,
    /// never split) provided `window_ps` is a multiple of this collector's
    /// base window and `n` windows cover every recorded completion. Returns
    /// `None` when either precondition fails.
    pub fn windows_on_grid(&self, window_ps: u64, n: usize) -> Option<Vec<HistSummary>> {
        let w = self.window.as_ps();
        if window_ps == 0 || !window_ps.is_multiple_of(w) {
            return None;
        }
        let mut grouped: Vec<Histogram> = Vec::new();
        grouped.resize_with(n, Histogram::new);
        for (i, hist) in self.hists.iter().enumerate() {
            let j = ((i as u64) * w / window_ps) as usize;
            if j >= n {
                if hist.count() == 0 {
                    continue;
                }
                return None;
            }
            grouped[j].merge(hist);
        }
        Some(grouped.iter().map(HistSummary::of).collect())
    }

    /// Per-window deltas of a cumulative counter over `n` windows of width
    /// `window_ps`: interior boundaries read the stepwise snapshot value,
    /// the final boundary reads the exact final counter, so the series sums
    /// to the final counter to the picosecond.
    fn delta_series(&self, counter: &str, n: usize, window_ps: u64, finals: &MetricSet) -> Vec<u64> {
        let total = finals.counter(counter).unwrap_or(0);
        let mut cumulative = Vec::with_capacity(n + 1);
        cumulative.push(0u64);
        for j in 1..n {
            let floor = *cumulative.last().expect("cumulative starts non-empty");
            cumulative.push(self.stepwise(counter, window_ps * j as u64, floor, total));
        }
        cumulative.push(total);
        cumulative.windows(2).map(|pair| pair[1] - pair[0]).collect()
    }
}

/// The wait-side counter paired with a resource's `*.busy_ps`, in the
/// precedence order the DES resources publish: server queue wait, link
/// queueing delay, throttle admission delay.
pub(crate) fn wait_counter(set: &MetricSet, base: &str) -> Option<String> {
    ["wait_ps", "queue_ps", "delay_ps"]
        .iter()
        .map(|suffix| format!("{base}.{suffix}"))
        .find(|name| set.counter(name).is_some())
}

/// One resource's per-window activity deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceSeries {
    /// Resource prefix as published into the report (`"accel"`, `"net"`).
    pub name: String,
    /// Parallel service units (the `*.units` counter; 1 when absent), the
    /// denominator scale for utilization.
    pub units: u64,
    /// Busy time accrued per window, picoseconds; sums to the final
    /// `*.busy_ps` counter exactly.
    pub busy_delta_ps: Vec<u64>,
    /// Wait/queue/admission delay accrued per window, picoseconds; sums to
    /// the matching final counter exactly (all zero when the resource
    /// publishes no wait-side counter).
    pub wait_delta_ps: Vec<u64>,
}

impl ResourceSeries {
    /// Utilization of window `i`: busy time over window capacity.
    pub fn utilization(&self, i: usize, window_ps: u64) -> f64 {
        self.busy_delta_ps[i] as f64 / (self.units as f64 * window_ps.max(1) as f64)
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("units", Json::U64(self.units));
        o.push("busy_delta_ps", Json::Arr(self.busy_delta_ps.iter().map(|&v| Json::U64(v)).collect()));
        o.push("wait_delta_ps", Json::Arr(self.wait_delta_ps.iter().map(|&v| Json::U64(v)).collect()));
        o
    }
}

/// Serializable, bounded view of a run's windowed telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSummary {
    /// Width of every window, picoseconds.
    pub window_ps: u64,
    /// Run makespan (last completion), picoseconds; the windows tile
    /// `(0, windows.len()·window_ps]` ⊇ `(0, elapsed_ps]`.
    pub elapsed_ps: u64,
    /// Whole-run histogram rebuilt by merging every window — equals the
    /// directly-accumulated total bucket-for-bucket.
    pub merged: HistSummary,
    /// Latency summary of the requests completing in each window (the
    /// count over the window width is the window's throughput).
    pub windows: Vec<HistSummary>,
    /// Per-resource busy/wait delta series, name-sorted.
    pub resources: Vec<ResourceSeries>,
}

impl TimelineSummary {
    /// Completions in window `i`.
    pub fn completed(&self, i: usize) -> u64 {
        self.windows[i].count
    }

    /// Throughput of window `i`, operations per second.
    pub fn throughput_ops(&self, i: usize) -> f64 {
        self.windows[i].count as f64 / (self.window_ps.max(1) as f64 / 1.0e12)
    }

    /// Largest per-window p99 across the run (tail-pressure digest).
    pub fn peak_p99_ps(&self) -> u64 {
        self.windows.iter().map(|w| w.p99_ps).max().unwrap_or(0)
    }

    /// Largest per-window utilization across all resources. Can exceed 1:
    /// the DES resources charge a request's whole busy time at its
    /// acquisition instant, so a window can absorb work that executes in
    /// the next one.
    pub fn peak_utilization(&self) -> f64 {
        let mut peak = 0.0f64;
        for r in &self.resources {
            for i in 0..r.busy_delta_ps.len() {
                peak = peak.max(r.utilization(i, self.window_ps));
            }
        }
        peak
    }

    /// Renders the timeline as a deterministic JSON value.
    pub fn to_json(&self) -> Json {
        let mut windows = Vec::with_capacity(self.windows.len());
        for w in &self.windows {
            windows.push(w.to_json());
        }
        let mut resources = Json::obj();
        for r in &self.resources {
            resources.push(&r.name, r.to_json());
        }
        let mut o = Json::obj();
        o.push("window_ps", Json::U64(self.window_ps));
        o.push("elapsed_ps", Json::U64(self.elapsed_ps));
        o.push("merged", self.merged.to_json());
        o.push("windows", Json::Arr(windows));
        o.push("resources", resources);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_us(n)
    }

    #[test]
    fn completions_bucket_by_completion_time() {
        let mut tl = Timeline::new(Span::from_us(10), 8);
        // Issued at 0, done at 5 µs → window 0; done at 15 µs → window 1;
        // done exactly at 10 µs → window 0 (left-open windows).
        tl.record(SimTime::ZERO, us(5));
        tl.record(SimTime::ZERO, us(15));
        tl.record(SimTime::ZERO, us(10));
        let s = tl.finalize(Span::from_us(15), &MetricSet::new());
        assert_eq!(s.windows.len(), 2);
        assert_eq!(s.completed(0), 2);
        assert_eq!(s.completed(1), 1);
        assert_eq!(s.merged.count, 3);
    }

    #[test]
    fn merged_equals_direct_accumulation_exactly() {
        let mut tl = Timeline::new(Span::from_us(10), 4);
        let mut direct = Histogram::new();
        for i in 0..500u64 {
            let issued = SimTime::from_ns(i * 731);
            let done = issued + Span::from_ns(1 + (i * i) % 90_000);
            tl.record(issued, done);
            direct.record(done.saturating_since(issued));
        }
        let s = tl.finalize(Span::from_ns(499 * 731 + 90_000), &MetricSet::new());
        // Exact: the same samples went into both, and histogram merge adds
        // bucket counts losslessly — no tolerance needed.
        assert_eq!(s.merged, HistSummary::of(&direct));
        let window_counts: u64 = s.windows.iter().map(|w| w.count).sum();
        assert_eq!(window_counts, 500);
        let window_sums: u128 = s.windows.iter().map(|w| w.sum_ps).sum();
        assert_eq!(window_sums, direct.sum_ps());
    }

    #[test]
    fn coalescing_bounds_windows_and_preserves_totals() {
        let mut tl = Timeline::new(Span::from_us(1), 4);
        // 100 µs of completions against a 4-window bound: the base window
        // must double repeatedly, and the final summary respects the bound.
        for i in 0..1000u64 {
            let done = SimTime::from_ns(i * 100 + 1);
            tl.record(SimTime::ZERO, done);
        }
        assert!(tl.window() > Span::from_us(1), "window should have doubled");
        let s = tl.finalize(Span::from_ns(999 * 100 + 1), &MetricSet::new());
        assert!(s.windows.len() <= 4, "{} windows", s.windows.len());
        assert_eq!(s.merged.count, 1000);
        assert!(s.window_ps * s.windows.len() as u64 >= s.elapsed_ps);
    }

    #[test]
    fn delta_series_telescopes_to_final_counters() {
        let mut tl = Timeline::new(Span::from_us(10), 8);
        // Completions define 4 windows over a 40 µs run.
        for k in 1..=4u64 {
            tl.record(SimTime::ZERO, us(10 * k));
        }
        // Snapshots at 10/20/30 µs with a counter growing 100 ps per window.
        for k in 1..=3u64 {
            if let Some(tick) = tl.due(us(10 * k)) {
                let mut set = MetricSet::new();
                set.set("srv.busy_ps", 100 * k);
                set.set("srv.wait_ps", 10 * k);
                tl.snapshot(tick, &set);
            }
        }
        let mut finals = MetricSet::new();
        finals.set("srv.busy_ps", 400);
        finals.set("srv.wait_ps", 40);
        finals.set("srv.units", 2);
        let s = tl.finalize(Span::from_us(40), &finals);
        assert_eq!(s.resources.len(), 1);
        let r = &s.resources[0];
        assert_eq!(r.name, "srv");
        assert_eq!(r.units, 2);
        assert_eq!(r.busy_delta_ps, vec![100, 100, 100, 100]);
        assert_eq!(r.wait_delta_ps, vec![10, 10, 10, 10]);
        assert_eq!(r.busy_delta_ps.iter().sum::<u64>(), 400);
    }

    #[test]
    fn unsampled_resources_attribute_to_the_tail_window() {
        let mut tl = Timeline::new(Span::from_us(10), 8);
        tl.record(SimTime::ZERO, us(30));
        let mut finals = MetricSet::new();
        finals.set("lnk.busy_ps", 900);
        finals.set("lnk.queue_ps", 90);
        let s = tl.finalize(Span::from_us(30), &finals);
        let r = &s.resources[0];
        // No snapshots → exactness still holds, all mass in the last delta.
        assert_eq!(r.busy_delta_ps, vec![0, 0, 900]);
        assert_eq!(r.wait_delta_ps, vec![0, 0, 90]);
    }

    #[test]
    fn zero_duration_run_yields_one_empty_window() {
        let tl = Timeline::default();
        let s = tl.finalize(Span::ZERO, &MetricSet::new());
        assert_eq!(s.windows.len(), 1);
        assert_eq!(s.merged.count, 0);
        assert_eq!(s.elapsed_ps, 0);
        assert_eq!(s.peak_p99_ps(), 0);
        assert_eq!(s.peak_utilization(), 0.0);
        // No division by zero anywhere on the render path either.
        let _ = s.to_json().render();
    }

    #[test]
    fn completion_exactly_on_makespan_boundary_stays_in_last_window() {
        let mut tl = Timeline::new(Span::from_us(10), 8);
        tl.record(SimTime::ZERO, us(20)); // makespan lands exactly on a tick
        let s = tl.finalize(Span::from_us(20), &MetricSet::new());
        assert_eq!(s.windows.len(), 2, "no empty third window");
        assert_eq!(s.completed(1), 1);
    }

    #[test]
    fn windows_on_grid_regroups_exactly() {
        let mut tl = Timeline::new(Span::from_us(10), 8);
        tl.record(SimTime::ZERO, us(5)); // base window 0
        tl.record(SimTime::ZERO, us(15)); // base window 1
        tl.record(SimTime::ZERO, us(25)); // base window 2
                                          // Regroup onto a 20 µs grid (2 base windows per target window).
        let grid = tl.windows_on_grid(20_000_000, 2).expect("grid divides");
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].count, 2);
        assert_eq!(grid[1].count, 1);
        // A non-multiple grid is rejected, as is a grid too short for a
        // non-empty base window.
        assert!(tl.windows_on_grid(15_000_000, 4).is_none());
        assert!(tl.windows_on_grid(20_000_000, 1).is_none());
        // Padding: extra target windows come back empty.
        let padded = tl.windows_on_grid(20_000_000, 5).unwrap();
        assert_eq!(padded.len(), 5);
        assert_eq!(padded[4].count, 0);
    }

    #[test]
    fn empty_timeline_pads_windows_on_any_grid() {
        let tl = Timeline::default(); // 50 µs base, nothing recorded
        let grid = tl.windows_on_grid(100_000_000, 3).unwrap();
        assert_eq!(grid.len(), 3);
        assert!(grid.iter().all(|w| w.count == 0));
    }

    #[test]
    fn json_shape_is_deterministic() {
        let mut tl = Timeline::new(Span::from_us(10), 4);
        tl.record(SimTime::ZERO, us(7));
        let mut finals = MetricSet::new();
        finals.set("a.busy_ps", 5);
        let a = tl.finalize(Span::from_us(7), &finals).to_json().render();
        let b = tl.finalize(Span::from_us(7), &finals).to_json().render();
        assert_eq!(a, b);
        assert!(a.contains("\"window_ps\""));
        assert!(a.contains("\"busy_delta_ps\""));
    }
}
