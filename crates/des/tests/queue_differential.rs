//! Differential property test: the time-wheel [`EventQueue`] against a
//! reference binary-heap scheduler, driven by identical seeded push/pop
//! schedules. Pop order — including same-time FIFO ties — must match
//! exactly; this is the determinism contract that keeps golden reports
//! byte-identical across scheduler implementations (DESIGN.md §12).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rambda_des::{EventQueue, SimRng, SimTime};

/// The original scheduler: a max-heap over `(time, seq)` with inverted
/// ordering, exactly as `EventQueue` was implemented before the time-wheel.
#[derive(Default)]
struct ReferenceQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

impl<E> ReferenceQueue<E> {
    fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }
}

/// Runs one randomized schedule against both queues, asserting every pop
/// matches. `time_range_ps` controls how widely event times spread — small
/// ranges maximize same-time ties, huge ranges exercise the far overflow.
fn differential_run(seed: u64, ops: usize, time_range_ps: u64) {
    let mut rng = SimRng::seed(seed);
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut reference: ReferenceQueue<u64> = ReferenceQueue::default();
    let mut now = SimTime::ZERO;
    let mut next_id = 0u64;
    for step in 0..ops {
        // Biased towards pushes so the queues grow, with pop bursts.
        if wheel.is_empty() || rng.chance(0.55) {
            // Mix in exact ties (same at as `now`) and pushes into the
            // already-drained past.
            let at = if rng.chance(0.15) {
                now
            } else {
                SimTime::from_ps(now.as_ps().saturating_add(rng.gen_range(0..time_range_ps)))
            };
            wheel.push(at, next_id);
            reference.push(at, next_id);
            next_id += 1;
        } else {
            let a = wheel.pop();
            let b = reference.pop();
            assert_eq!(a, b, "divergence at step {step} (seed {seed})");
            if let Some((at, _)) = a {
                now = at;
            }
        }
        assert_eq!(wheel.len(), reference.heap.len());
    }
    // Drain both to the end: full order must agree.
    loop {
        let a = wheel.pop();
        let b = reference.pop();
        assert_eq!(a, b, "drain divergence (seed {seed})");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn near_horizon_schedules_match_reference() {
    // Times within a few bucket widths: the common closed-loop case.
    for seed in 0..8 {
        differential_run(seed, 4_000, 5 << 20);
    }
}

#[test]
fn tie_heavy_schedules_match_reference() {
    // 1-ns range: nearly everything collides on the same few instants.
    for seed in 100..108 {
        differential_run(seed, 4_000, 1_000);
    }
}

#[test]
fn far_future_schedules_match_reference() {
    // Spreads far past the initial wheel horizon: constant re-anchoring
    // and overflow promotion.
    for seed in 200..208 {
        differential_run(seed, 4_000, 1 << 40);
    }
}

#[test]
fn mixed_scale_schedules_match_reference() {
    // Per-seed range sweep from sub-bucket to way past the horizon.
    for (i, seed) in (300..312).enumerate() {
        differential_run(seed, 2_000, 1 << (4 + 4 * i as u32));
    }
}
