//! DLRM inference: functional MERCI memoization (same scores, fewer memory
//! lookups) and the CPU-vs-Rambda serving comparison, including the
//! envisioned local-memory accelerators.
//!
//! Run: `cargo run --release -p rambda-examples --bin dlrm_inference`

use rambda::Testbed;
use rambda_accel::DataLocation;
use rambda_des::SimRng;
use rambda_dlrm::merci::sample_correlated_query;
use rambda_dlrm::serving::{run_cpu, run_rambda};
use rambda_dlrm::{DlrmModel, DlrmParams, MemoTable, ReductionPlan};
use rambda_examples::{banner, metric};
use rambda_workloads::{DlrmProfile, Zipf};

fn main() {
    banner("functional MERCI: same result, fewer lookups");
    let rows = 16_384u32;
    let model = DlrmModel::synthetic(rows as usize, 64);
    let memo = MemoTable::build(&model.embedding);
    let profile = DlrmProfile::by_name("Books").unwrap();
    let pair_zipf = Zipf::new(rows as u64 / 2, profile.zipf_theta);
    let mut rng = SimRng::seed(5);
    let query = sample_correlated_query(&profile, rows, &pair_zipf, &mut rng);
    let plan = ReductionPlan::build(&query, &memo);
    let fast = plan.reduce(&model.embedding, &memo);
    let score = model.mlp.forward(&fast)[0];
    let naive = model.infer(&query.features);
    metric("query features", query.len());
    metric("lookups with MERCI", plan.lookups());
    metric("memoized fraction", format!("{:.0}%", plan.memo_fraction() * 100.0));
    metric("score (memoized)", format!("{score:.6}"));
    metric("score (naive)", format!("{naive:.6}"));

    banner("Fig. 13 style serving comparison (Books)");
    let testbed = Testbed::default();
    let params = DlrmParams::quick(profile);
    let c1 = run_cpu(&testbed, &params, 1).throughput_mops();
    let c8 = run_cpu(&testbed, &params, 8).throughput_mops();
    let rambda = run_rambda(&testbed, &params, DataLocation::HostDram).throughput_mops();
    let ld = run_rambda(&testbed, &params, DataLocation::LocalDdr).throughput_mops();
    let lh = run_rambda(&testbed, &params, DataLocation::LocalHbm).throughput_mops();
    metric("CPU x1 (Mq/s)", format!("{c1:.2}"));
    metric("CPU x8 (Mq/s)", format!("{c8:.2}"));
    metric("Rambda prototype (Mq/s)", format!("{rambda:.2}  ({:.0}% of one core)", rambda / c1 * 100.0));
    metric("Rambda-LD (Mq/s)", format!("{ld:.2}  ({:.2}x of 8 cores)", ld / c8));
    metric("Rambda-LH (Mq/s)", format!("{lh:.2}  ({:.2}x of 8 cores)", lh / c8));
    println!("\nThe prototype is starved by serial gathers over the cc-interconnect;");
    println!("accelerator-local memory (LD/HBM) turns the tables until the network limits.");
}
