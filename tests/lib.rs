//! Cross-crate integration tests live next to this stub:
//! `end_to_end_kvs.rs`, `notification_pipeline.rs`, `txn_consistency.rs`,
//! `adaptive_ddio.rs`, `determinism.rs`.
