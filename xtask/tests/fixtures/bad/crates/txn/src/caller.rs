//! A live call site of a deprecated runner outside the shim's own file:
//! trips R6. A `use` re-export or a `#[cfg(test)]` call would be exempt.

pub fn sweep() -> u64 {
    crate::run_txn_report_traced()
}
