//! `cargo xtask` — workspace automation.
//!
//! ```text
//! cargo xtask analyze [--root PATH] [--verbose]
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations (or stale allowlist entries),
//! 2 = usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::rules::{analyze, Config};

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  analyze [--root PATH] [--verbose]
      Enforce the workspace determinism & unsafety invariants (DESIGN.md §8):
        R1  no HashMap/HashSet in simulation crates
        R2  no wall-clock / thread::spawn / env-dependent I/O in simulation crates
        R3  unsafe confined to crates/ring, each use documented with // SAFETY:
        R4  every pub item in rambda-des, rambda-metrics and rambda-trace documented
        R5  no println!/eprintln! outside src/bin drivers and the bench crate
      Violations can be allowlisted in xtask/analyze.allow (one per line:
      `RULE path token  # reason`); stale entries are errors.
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") => {
            let mut root: Option<PathBuf> = None;
            let mut verbose = false;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => match args.next() {
                        Some(p) => root = Some(PathBuf::from(p)),
                        None => return usage_error("--root requires a path"),
                    },
                    "--verbose" => verbose = true,
                    other => return usage_error(&format!("unknown flag `{other}`")),
                }
            }
            run_analyze(root, verbose)
        }
        Some("help") | Some("--help") | Some("-h") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown command `{other}`")),
        None => usage_error("missing command"),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// The workspace root: `--root`, or the parent of this crate's manifest dir
/// (so `cargo xtask analyze` works from any cwd inside the workspace).
fn workspace_root(explicit: Option<PathBuf>) -> PathBuf {
    explicit.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).parent().expect("xtask has a parent dir").to_path_buf()
    })
}

fn run_analyze(root: Option<PathBuf>, verbose: bool) -> ExitCode {
    let cfg = Config::rambda(workspace_root(root));
    let analysis = match analyze(&cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    if verbose {
        for v in &analysis.allowed {
            println!("allowed: {v}");
        }
    }
    for v in &analysis.violations {
        println!("{v}");
    }
    for stale in &analysis.stale_allows {
        println!("xtask/analyze.allow: stale entry matches nothing, delete it: `{stale}`");
    }

    let n = analysis.violations.len();
    let s = analysis.stale_allows.len();
    println!(
        "analyze: {} files scanned, {n} violation{}, {} allowlisted, {s} stale allowlist entr{}",
        analysis.files_scanned,
        if n == 1 { "" } else { "s" },
        analysis.allowed.len(),
        if s == 1 { "y" } else { "ies" },
    );
    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
