//! Seeded, deterministic randomness for experiments.
//!
//! The generator is a self-contained xoshiro256** (Blackman & Vigna) seeded
//! through SplitMix64, so the workspace needs no external RNG crate and the
//! stream produced for a given seed is stable across platforms and toolchain
//! versions — a prerequisite for the golden run-report regression gate.

/// A deterministic random number generator for simulations.
///
/// Every experiment in the workspace takes a seed so that results are exactly
/// reproducible run-to-run.
///
/// ```
/// use rambda_des::SimRng;
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

/// One round of SplitMix64: expands a 64-bit seed into a full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A type that can be drawn uniformly from a range by [`SimRng::gen_range`].
pub trait SampleUniform: Copy {
    /// Converts to the u64 sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the u64 sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges [`SimRng::gen_range`] accepts (half-open and inclusive).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut SimRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "gen_range called with an empty range");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "gen_range called with an empty range");
        let width = hi - lo;
        if width == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.below(width + 1))
    }
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256** must not start from the all-zero state; SplitMix64
        // cannot produce four consecutive zeros, but keep the guard explicit.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Derives an independent child RNG (for per-client streams).
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.rotate_left(17);
        SimRng::seed(s)
    }

    /// Derives a named stream from a base seed without consuming any draws
    /// from an existing generator (unlike [`SimRng::fork`]).
    ///
    /// Two streams derived from the same seed with different salts are
    /// statistically independent, and a stream's output depends only on
    /// `(seed, salt)` — never on how many numbers any other stream has
    /// drawn. The fault-injection plan uses this so fault schedules stay
    /// byte-reproducible and orthogonal to workload randomness.
    pub fn stream(seed: u64, salt: u64) -> SimRng {
        // Mix the salt through one SplitMix64 round so that structured
        // salts (0, 1, 2, ...) land far apart in seed space.
        let mut sm = salt;
        SimRng::seed(seed ^ splitmix64(&mut sm))
    }

    /// A raw 64-bit sample (xoshiro256** output function).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample in `[0, bound)` via Lemire's widening-multiply
    /// rejection method (unbiased).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Samples uniformly from a range.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniform float in `[0, 1)` (53 bits of precision).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// An exponentially-distributed sample with the given mean.
    ///
    /// Used for request inter-arrival jitter in open-loop drivers.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = 1.0 - self.f64(); // (0, 1]
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ_but_are_deterministic() {
        let mut root1 = SimRng::seed(7);
        let mut root2 = SimRng::seed(7);
        let mut a = root1.fork(1);
        let mut b = root2.fork(1);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = SimRng::seed(7).fork(2);
        // Extremely unlikely to collide.
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn streams_are_independent_of_parent_consumption() {
        let mut a = SimRng::stream(7, 1);
        // Deriving the stream again — after arbitrary other activity on
        // unrelated generators — yields the identical sequence.
        let mut other = SimRng::seed(7);
        let _ = other.next_u64();
        let mut b = SimRng::stream(7, 1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different salts give different streams.
        let mut c = SimRng::stream(7, 2);
        assert_ne!(SimRng::stream(7, 1).next_u64(), c.next_u64());
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = SimRng::seed(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() / mean < 0.05, "mean={m}");
    }

    #[test]
    fn chance_frequency() {
        let mut rng = SimRng::seed(4);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SimRng::seed(6);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
            let u: usize = rng.gen_range(3..4usize);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SimRng::seed(8);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts={counts:?}");
        }
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = SimRng::seed(9);
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
