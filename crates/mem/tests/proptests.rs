//! Property-based tests for the memory-system model.

use proptest::prelude::*;
use rambda_des::SimTime;
use rambda_mem::{AccessKind, MemConfig, MemKind, MemReq, MemorySystem};

proptest! {
    /// NVM write amplification is always >= 1 and direct writes never
    /// amplify beyond granule rounding.
    #[test]
    fn nvm_amplification_bounds(writes in proptest::collection::vec(1u64..5000, 1..100)) {
        let mut mem = MemorySystem::new(MemConfig::default(), false);
        let mut logical = 0u64;
        for (i, &w) in writes.iter().enumerate() {
            mem.access(
                SimTime::from_us(i as u64),
                MemReq { kind: MemKind::Nvm, access: AccessKind::Write, bytes: w },
            );
            logical += w;
        }
        let s = mem.stats();
        prop_assert_eq!(s.nvm_logical_write_bytes, logical);
        prop_assert!(s.nvm_physical_write_bytes >= logical);
        // Granule rounding adds at most granularity-1 per write.
        prop_assert!(s.nvm_physical_write_bytes < logical + 256 * writes.len() as u64);
        prop_assert!(s.nvm_write_amplification() >= 1.0);
    }

    /// DMA routing: with DDIO on or TPH set, DRAM-destined writes never
    /// touch the memory channels, whatever the sizes.
    #[test]
    fn ddio_routing_invariant(writes in proptest::collection::vec(1u64..100_000, 1..50),
                              ddio in any::<bool>(), tph in any::<bool>()) {
        let mut mem = MemorySystem::new(MemConfig::default(), ddio);
        let capacity = mem.config().ddio_capacity();
        let mut injected = 0u64;
        for (i, &w) in writes.iter().enumerate() {
            mem.dma_write(SimTime::from_us(i as u64), w, tph, MemKind::Dram);
            injected += w;
        }
        let s = *mem.stats();
        if ddio || tph {
            prop_assert_eq!(s.dma_to_llc_bytes, injected);
            // Only overflow beyond the DDIO ways may spill to DRAM writes,
            // and never more than the overflow amount.
            prop_assert!(s.dram_write_bytes <= injected.saturating_sub(capacity.min(injected)) + 1);
            prop_assert_eq!(s.dram_read_bytes, 0);
        } else {
            prop_assert_eq!(s.dma_to_mem_bytes, injected);
            prop_assert_eq!(s.dram_read_bytes, injected);
            prop_assert_eq!(s.dram_write_bytes, injected);
        }
    }

    /// Access completion times are causal (>= request time) and byte
    /// counters are exact for DRAM traffic.
    #[test]
    fn dram_accounting_exact(ops in proptest::collection::vec((any::<bool>(), 1u64..10_000), 1..100)) {
        let mut mem = MemorySystem::new(MemConfig::default(), true);
        let (mut reads, mut writes) = (0u64, 0u64);
        for (i, &(is_write, bytes)) in ops.iter().enumerate() {
            let at = SimTime::from_us(i as u64);
            let access = if is_write { AccessKind::Write } else { AccessKind::Read };
            let done = mem.access(at, MemReq { kind: MemKind::Dram, access, bytes });
            prop_assert!(done >= at);
            if is_write { writes += bytes } else { reads += bytes }
        }
        prop_assert_eq!(mem.stats().dram_read_bytes, reads);
        prop_assert_eq!(mem.stats().dram_write_bytes, writes);
    }
}
