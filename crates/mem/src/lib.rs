//! Memory-system model for the Rambda reproduction.
//!
//! Models the server memory hierarchy the paper's evaluation exercises:
//!
//! * six-channel DDR4 DRAM (Tab. II),
//! * Optane-like NVM with 256 B access granularity, asymmetric read/write
//!   latency, reduced bandwidth, and DDIO-eviction **write amplification**
//!   (Sec. III-D),
//! * the shared LLC with **DDIO** ways and the PCIe **TPH** per-packet
//!   routing knob (Fig. 5 / Fig. 6),
//! * accelerator-local DDR4 / HBM2 for the envisioned Rambda-LD / Rambda-LH
//!   variants (Sec. V),
//! * Smart-NIC on-board DRAM.
//!
//! The model is a deterministic cost model: every access is charged latency
//! and bandwidth on the appropriate media, and byte counters expose the
//! memory-bandwidth consumption that Fig. 5 measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod llc;
mod system;

pub use config::MemConfig;
pub use llc::{DmaRoute, Llc};
pub use system::{AccessKind, MemKind, MemReq, MemStats, MemorySystem};
