//! Reproducibility: every experiment is a deterministic function of its
//! seed — identical runs, bit-for-bit identical statistics.

use rambda::micro::{run_cpu, run_rambda, MicroParams};
use rambda::{Design, SimBuilder, Testbed};
use rambda_accel::DataLocation;
use rambda_kvs::designs as kvs;
use rambda_kvs::{KvsDesigns, KvsParams};
use rambda_metrics::RunReport;
use rambda_trace::Tracer;
use rambda_txn::{run_rambda_tx, TxnParams};
use rambda_workloads::TxnSpec;

fn same(a: &rambda::RunStats, b: &rambda::RunStats) -> bool {
    a.completed == b.completed
        && a.throughput_ops == b.throughput_ops
        && a.latency.mean() == b.latency.mean()
        && a.latency.percentile(0.99) == b.latency.percentile(0.99)
}

#[test]
fn micro_runs_are_reproducible() {
    let tb = Testbed::default();
    let p = MicroParams::quick();
    let a = run_rambda(&tb, p, DataLocation::HostDram, true, 7);
    let b = run_rambda(&tb, p, DataLocation::HostDram, true, 7);
    assert!(same(&a, &b));
    let c = run_rambda(&tb, p.with_nvm(), DataLocation::HostDram, false, 7);
    let d = run_rambda(&tb, p.with_nvm(), DataLocation::HostDram, false, 7);
    assert!(same(&c, &d));
    // The CPU run takes no seed: fully deterministic.
    assert!(same(&run_cpu(&tb, p, 4, 16), &run_cpu(&tb, p, 4, 16)));
}

#[test]
fn kvs_runs_are_reproducible_and_seed_sensitive() {
    let tb = Testbed::default();
    let p = KvsParams { requests: 10_000, ..KvsParams::quick() }.with_zipf(0.9);
    let a = kvs::run_rambda(&tb, &p, DataLocation::HostDram);
    let b = kvs::run_rambda(&tb, &p, DataLocation::HostDram);
    assert!(same(&a, &b));

    let mut p2 = p.clone();
    p2.seed = p.seed + 1;
    let c = kvs::run_cpu(&tb, &p);
    let d = kvs::run_cpu(&tb, &p2);
    // A different seed produces a (slightly) different run.
    assert!(c.latency.mean() != d.latency.mean() || c.throughput_ops != d.throughput_ops);
}

#[test]
fn every_runner_report_is_byte_identical_across_runs() {
    // Stronger than `same()`: each runner is executed twice in fresh worlds
    // and must render byte-identical RunReport JSON — the exact property the
    // golden snapshots and CI gate rely on (DESIGN.md §8). This covers every
    // design, including the runners the golden files do not snapshot, so a
    // nondeterministic container sneaking into any simulator state (the
    // analyzer's rule R1 territory) fails here at runtime too.
    // The canonical quick-mode registry covers every named runner, so this
    // loop automatically picks up new designs as they are installed.
    let reg = rambda_bench::quick_registry();
    assert!(reg.is_complete(), "quick registry must cover every runner");
    fn build(design: Design) -> RunReport {
        SimBuilder::new(design).config(&Testbed::default()).run()
    }
    for name in reg.names() {
        let first = build(reg.design(name).unwrap()).to_json_string();
        let second = build(reg.design(name).unwrap()).to_json_string();
        assert_eq!(first, second, "{name}: report JSON differs between identical runs");
    }
}

#[test]
fn txn_runs_are_reproducible() {
    let tb = Testbed::default();
    let p = TxnParams { txns: 2_000, ..TxnParams::quick(TxnSpec::read_write(64)) };
    let a = run_rambda_tx(&tb, &p);
    let b = run_rambda_tx(&tb, &p);
    assert!(same(&a, &b));
}

#[test]
fn traced_runs_export_byte_identical_artifacts() {
    // The flight recorder must not weaken the reproducibility guarantee:
    // with tracing enabled, two runs of the same seed render byte-identical
    // compact binaries and byte-identical Chrome JSON — the property the
    // `.trace.bin` format exists to make checkable.
    let tb = Testbed::default();

    let micro_run = || {
        let mut t = Tracer::flight_recorder();
        let r = SimBuilder::new(Design::micro_rambda(MicroParams::quick(), DataLocation::HostDram, true, 7))
            .config(&tb)
            .tracer(&mut t)
            .run();
        (r, t)
    };
    let (ra, ta) = micro_run();
    let (rb, tb_) = micro_run();
    assert_eq!(ra.to_json_string(), rb.to_json_string());
    assert_eq!(ta.export_binary(), tb_.export_binary(), "micro.rambda binary traces differ");
    assert_eq!(ta.export_chrome_json(), tb_.export_chrome_json(), "micro.rambda chrome traces differ");

    let p = KvsParams::quick();
    let kvs_run = || {
        let mut t = Tracer::flight_recorder();
        let r = SimBuilder::new(Design::kvs_rambda(p.clone(), DataLocation::HostDram))
            .config(&tb)
            .tracer(&mut t)
            .run();
        (r, t)
    };
    let (ra, ta) = kvs_run();
    let (rb, tb_) = kvs_run();
    assert_eq!(ra.to_json_string(), rb.to_json_string());
    assert_eq!(ta.export_binary(), tb_.export_binary(), "kvs.rambda binary traces differ");
    assert_eq!(ta.export_chrome_json(), tb_.export_chrome_json(), "kvs.rambda chrome traces differ");
}
