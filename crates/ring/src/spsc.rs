//! A Lamport-style lock-free single-producer/single-consumer ring buffer.
//!
//! This is the data structure at the bottom of every Rambda communication
//! path. Slots carry a per-slot sequence word, which mirrors how the paper's
//! rings detect message arrival by observing slot contents change (the
//! consumer "resets the entry to 0" after draining — here, the consumer
//! advances the slot's sequence so the producer can reuse it).
//!
//! # Example
//!
//! ```
//! let (mut tx, mut rx) = rambda_ring::channel::<u32>(8);
//! assert!(tx.push(7).is_ok());
//! assert_eq!(rx.pop(), Some(7));
//! assert_eq!(rx.pop(), None);
//! ```

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads and aligns a value to 128 bytes so the producer- and consumer-owned
/// indices never share a cache line (false sharing). Local stand-in for
/// `crossbeam_utils::CachePadded`, which is unavailable offline.
#[derive(Debug, Default)]
#[repr(align(128))]
struct CachePadded<T>(T);

impl<T> CachePadded<T> {
    fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

struct Slot<T> {
    /// Sequence protocol (for capacity `n`, lap = index / n):
    /// `seq == index`       → empty, writable by the producer at `index`.
    /// `seq == index + 1`   → full, readable by the consumer at `index`.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Shared<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    head: CachePadded<AtomicUsize>, // next pop index (consumer-owned)
    tail: CachePadded<AtomicUsize>, // next push index (producer-owned)
}

// SAFETY: `Shared<T>` can move to another thread when `T` can: the only
// non-Send-hostile state is the `UnsafeCell<MaybeUninit<T>>` slots, and the
// slot protocol hands each cell to exactly one side at a time (producer when
// seq == index, consumer when seq == index + 1).
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: `&Shared<T>` may be used from both endpoint threads concurrently:
// all shared-index accesses are atomic, and Acquire/Release ordering on each
// slot's `seq` establishes happens-before for the cell contents, so the two
// sides never touch a `value` cell at the same time. Only `T: Send` is
// required (not `T: Sync`) because a value is only ever accessed by the one
// side that currently owns its slot.
unsafe impl<T: Send> Sync for Shared<T> {}

/// The producing half of an SPSC ring. Not clonable: single producer.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer's private copy of the tail (it is the only writer).
    tail: usize,
}

/// The consuming half of an SPSC ring. Not clonable: single consumer.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer's private copy of the head (it is the only writer).
    head: usize,
}

/// Creates an SPSC ring with `capacity` slots.
///
/// # Panics
///
/// Panics if `capacity` is not a power of two of at least 2 (ring buffers in
/// the prototype are power-of-two sized so index arithmetic is a mask; a
/// one-slot ring would make the slot-sequence protocol ambiguous).
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(
        capacity >= 2 && capacity.is_power_of_two(),
        "capacity must be a power of two >= 2, got {capacity}"
    );
    let slots: Box<[Slot<T>]> = (0..capacity)
        .map(|i| Slot { seq: AtomicUsize::new(i), value: UnsafeCell::new(MaybeUninit::uninit()) })
        .collect();
    let shared = Arc::new(Shared {
        slots,
        mask: capacity - 1,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
    });
    (Producer { shared: Arc::clone(&shared), tail: 0 }, Consumer { shared, head: 0 })
}

impl<T> Producer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Attempts to push a value; on a full ring, hands the value back.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let idx = self.tail;
        let slot = &self.shared.slots[idx & self.shared.mask];
        if slot.seq.load(Ordering::Acquire) != idx {
            return Err(value); // consumer has not freed this lap yet
        }
        // SAFETY: seq == idx hands this cell to the producer exclusively.
        unsafe { (*slot.value.get()).write(value) };
        slot.seq.store(idx + 1, Ordering::Release);
        self.tail = idx + 1;
        self.shared.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Number of elements currently in the ring (approximate under
    /// concurrency, exact when quiescent).
    pub fn len(&self) -> usize {
        self.tail - self.shared.head.load(Ordering::Acquire)
    }

    /// Whether the ring appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the ring appears full.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    /// Total values ever pushed (the producer-side cursor).
    pub fn pushed(&self) -> usize {
        self.tail
    }
}

impl<T> Consumer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Attempts to pop the next value.
    pub fn pop(&mut self) -> Option<T> {
        let idx = self.head;
        let slot = &self.shared.slots[idx & self.shared.mask];
        if slot.seq.load(Ordering::Acquire) != idx + 1 {
            return None; // empty
        }
        // SAFETY: seq == idx + 1 hands this cell to the consumer exclusively,
        // and the value was initialized by the matching push.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        // Free the slot for the producer's next lap ("reset the entry").
        slot.seq.store(idx + self.capacity(), Ordering::Release);
        self.head = idx + 1;
        self.shared.head.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Pops up to `max` values into a vector (batched drain, as the server
    /// side of the paper's rings does).
    pub fn pop_batch(&mut self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.pop() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }

    /// Number of elements currently readable (approximate under
    /// concurrency, exact when quiescent).
    ///
    /// Saturating: the producer publishes a slot's `seq` *before* storing
    /// the shared tail, so this consumer can pop that slot and advance past
    /// a stale shared tail for a moment — the interleaving checker's
    /// `spsc_memory_level_exhaustive` model exhibits the window.
    pub fn len(&self) -> usize {
        self.shared.tail.load(Ordering::Acquire).saturating_sub(self.head)
    }

    /// Whether the ring appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total values ever popped (the consumer-side cursor).
    pub fn popped(&self) -> usize {
        self.head
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Drain remaining initialized values so they are dropped exactly once.
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer").field("tail", &self.tail).field("capacity", &self.capacity()).finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer").field("head", &self.head).field("capacity", &self.capacity()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (mut tx, mut rx) = channel::<u64>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert!(tx.is_full());
        assert_eq!(tx.push(99), Err(99));
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn wraparound_many_laps() {
        let (mut tx, mut rx) = channel::<usize>(8);
        for lap in 0..1000 {
            for i in 0..8 {
                tx.push(lap * 8 + i).unwrap();
            }
            for i in 0..8 {
                assert_eq!(rx.pop(), Some(lap * 8 + i));
            }
        }
        assert_eq!(tx.pushed(), 8000);
        assert_eq!(rx.popped(), 8000);
    }

    #[test]
    fn pop_batch_drains_up_to_max() {
        let (mut tx, mut rx) = channel::<u32>(16);
        for i in 0..10 {
            tx.push(i).unwrap();
        }
        assert_eq!(rx.pop_batch(4), vec![0, 1, 2, 3]);
        assert_eq!(rx.pop_batch(100), vec![4, 5, 6, 7, 8, 9]);
        assert!(rx.pop_batch(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = channel::<u8>(3);
    }

    #[test]
    fn len_tracks_occupancy() {
        let (mut tx, mut rx) = channel::<u8>(4);
        assert_eq!(tx.len(), 0);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.pop();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn drops_remaining_values() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = channel::<D>(4);
        assert!(tx.push(D).is_ok());
        assert!(tx.push(D).is_ok());
        drop(rx);
        drop(tx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn cross_thread_stress() {
        let (mut tx, mut rx) = channel::<u64>(64);
        const N: u64 = 50_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expect, "out-of-order or lost message");
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }
}
